// Package stabilize implements Section III of the paper: stabilizing
// systems (Algorithm 1), complete stabilizing assignments σ, and the exact
// logical path sets LP(v, σ(v)) and LP(σ).
//
// A stabilizing system for input vector v is a minimal subcircuit that
// forces the primary outputs to their stable values under v regardless of
// the rest of the circuit. Exact computation enumerates all 2^n input
// vectors and is intended for small circuits: it provides ground truth for
// the fast approximate identification in package core and reproduces the
// paper's Figures 1-5.
package stabilize

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"rdfault/internal/circuit"
	"rdfault/internal/paths"
)

// Chooser selects, for Step 2(b) of Algorithm 1, which controlling input
// pin of gate g to include in the stabilizing system. ctrlPins is the
// non-empty set L of pins whose stable values are controlling under the
// current input vector.
type Chooser func(c *circuit.Circuit, g circuit.GateID, ctrlPins []int) int

// ChooseFirst picks the lowest-numbered pin (σ^π for the pin-order sort).
func ChooseFirst(_ *circuit.Circuit, _ circuit.GateID, ctrlPins []int) int {
	return ctrlPins[0]
}

// ChooseBySort returns a Chooser realizing σ^π for the given input sort:
// it always picks the controlling pin with minimum π-position, as required
// by the definition after Definition 7.
func ChooseBySort(sort circuit.InputSort) Chooser {
	return func(_ *circuit.Circuit, g circuit.GateID, ctrlPins []int) int {
		return sort.MinPin(g, ctrlPins)
	}
}

// ChooseRandom returns a deterministic pseudo-random Chooser. Different
// calls during one traversal draw from the same stream, so the resulting
// assignment is an arbitrary (not sort-induced) complete stabilizing
// assignment — useful for property tests of Theorem 1, which holds for
// every choice.
func ChooseRandom(seed int64) Chooser {
	rng := rand.New(rand.NewSource(seed))
	return func(_ *circuit.Circuit, _ circuit.GateID, ctrlPins []int) int {
		return ctrlPins[rng.Intn(len(ctrlPins))]
	}
}

// System is a stabilizing system: the subset of gates and leads selected
// by Algorithm 1 for one input vector.
type System struct {
	c     *circuit.Circuit
	v     []bool // the input vector, Inputs() order
	gates []bool // included gates
	leads []bool // included leads, by Circuit.LeadIndex
}

// Compute runs Algorithm 1 for input vector v (in Inputs() order) with
// the given chooser. For multi-output circuits the traversal starts from
// every PO, which equals applying the paper's per-output-cone construction
// with consistent choices. The zero-value chooser (nil) means ChooseFirst.
func Compute(c *circuit.Circuit, v []bool, choose Chooser) *System {
	if choose == nil {
		choose = ChooseFirst
	}
	val := c.EvalBool(v)
	s := &System{
		c:     c,
		v:     append([]bool(nil), v...),
		gates: make([]bool, c.NumGates()),
		leads: make([]bool, c.NumLeads()),
	}
	// Work list of gates included in S whose input leads are not yet
	// decided.
	var queue []circuit.GateID
	include := func(g circuit.GateID) {
		if !s.gates[g] {
			s.gates[g] = true
			queue = append(queue, g)
		}
	}
	includeLead := func(g circuit.GateID, pin int) {
		s.leads[c.LeadIndex(g, pin)] = true
		include(c.Fanin(g)[pin])
	}
	for _, po := range c.Outputs() {
		include(po)
	}
	for len(queue) > 0 {
		g := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		switch t := c.Type(g); t {
		case circuit.Input:
			// Step 3: nothing further.
		case circuit.Output, circuit.Buf, circuit.Not:
			// Step 1 (NOT) and the trivial single-input cases: include
			// the only input lead.
			includeLead(g, 0)
		default:
			// Step 2: simple gate.
			ctrlVal, _ := t.Controlling()
			var ctrlPins []int
			for pin, f := range c.Fanin(g) {
				if val[f] == ctrlVal {
					ctrlPins = append(ctrlPins, pin)
				}
			}
			if len(ctrlPins) == 0 {
				// 2(a): all inputs non-controlling; include all leads.
				for pin := range c.Fanin(g) {
					includeLead(g, pin)
				}
			} else {
				// 2(b): include exactly one controlling lead.
				includeLead(g, choose(c, g, ctrlPins))
			}
		}
	}
	return s
}

// Circuit returns the underlying circuit.
func (s *System) Circuit() *circuit.Circuit { return s.c }

// Input returns the input vector the system stabilizes.
func (s *System) Input() []bool { return s.v }

// HasGate reports whether gate g belongs to the system.
func (s *System) HasGate(g circuit.GateID) bool { return s.gates[g] }

// HasLead reports whether the lead entering pin of gate g belongs to the
// system.
func (s *System) HasLead(g circuit.GateID, pin int) bool {
	return s.leads[s.c.LeadIndex(g, pin)]
}

// NumLeads returns the number of leads in the system.
func (s *System) NumLeads() int {
	n := 0
	for _, b := range s.leads {
		if b {
			n++
		}
	}
	return n
}

// ForEachPath enumerates the physical paths of the system (PI-to-PO paths
// using only included leads). The Path buffer is shared; Clone to retain.
func (s *System) ForEachPath(fn func(paths.Path) bool) bool {
	var gates []circuit.GateID
	var pins []int
	var dfs func(g circuit.GateID) bool
	dfs = func(g circuit.GateID) bool {
		gates = append(gates, g)
		defer func() { gates = gates[:len(gates)-1] }()
		if s.c.Type(g) == circuit.Output {
			return fn(paths.Path{Gates: gates, Pins: pins})
		}
		for _, e := range s.c.Fanout(g) {
			if !s.leads[s.c.LeadIndex(e.To, e.Pin)] {
				continue
			}
			pins = append(pins, e.Pin)
			ok := dfs(e.To)
			pins = pins[:len(pins)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	for i, pi := range s.c.Inputs() {
		_ = i
		if !s.gates[pi] {
			continue
		}
		if !dfs(pi) {
			return false
		}
	}
	return true
}

// LogicalPaths returns LP(v, S): each physical path of S paired with the
// transition whose final value at PI(P) is the value of that PI under v
// (definition in Section III).
func (s *System) LogicalPaths() []paths.Logical {
	idx := make(map[circuit.GateID]int, len(s.c.Inputs()))
	for i, pi := range s.c.Inputs() {
		idx[pi] = i
	}
	var out []paths.Logical
	s.ForEachPath(func(p paths.Path) bool {
		out = append(out, paths.Logical{Path: p.Clone(), FinalOne: s.v[idx[p.PI()]]})
		return true
	})
	return out
}

// String lists the system's leads by name, deterministically.
func (s *System) String() string {
	var parts []string
	for g := circuit.GateID(0); int(g) < s.c.NumGates(); g++ {
		for pin := range s.c.Fanin(g) {
			if s.HasLead(g, pin) {
				parts = append(parts, fmt.Sprintf("%s->%s",
					s.c.Gate(s.c.Fanin(g)[pin]).Name, s.c.Gate(g).Name))
			}
		}
	}
	return strings.Join(parts, ", ")
}

// Assignment is a complete stabilizing assignment σ: one stabilizing
// system per input vector. Exact and exponential in the input count —
// small circuits only.
type Assignment struct {
	c       *circuit.Circuit
	systems []*System // indexed by input vector encoded as bits (input i = bit i)
}

// MaxAssignmentInputs bounds ComputeAssignment: σ holds one stabilizing
// system per input vector, so the memory and time cost is 2^n.
const MaxAssignmentInputs = 24

// ErrTooManyInputs is returned (wrapped in a *TooManyInputsError) when a
// circuit is too wide for the exhaustive assignment. Match with errors.Is.
var ErrTooManyInputs = errors.New("stabilize: too many inputs for an exhaustive assignment")

// TooManyInputsError reports the offending width; it unwraps to
// ErrTooManyInputs.
type TooManyInputsError struct {
	Inputs, Max int
}

func (e *TooManyInputsError) Error() string {
	return fmt.Sprintf("stabilize: circuit has %d inputs, exhaustive assignment supports at most %d (2^n systems)",
		e.Inputs, e.Max)
}

func (e *TooManyInputsError) Unwrap() error { return ErrTooManyInputs }

// CheckWidth reports whether a circuit with n primary inputs fits an
// exhaustive 2^n vector enumeration, returning the typed
// *TooManyInputsError otherwise. Every exhaustive entry point — here and
// the exact oracle in internal/oracle — shares this single limit check,
// so callers can match one error shape regardless of which layer refused.
func CheckWidth(n int) error {
	if n > MaxAssignmentInputs {
		return &TooManyInputsError{Inputs: n, Max: MaxAssignmentInputs}
	}
	return nil
}

// ComputeAssignment builds σ by running Algorithm 1 for all 2^n input
// vectors. Circuits wider than MaxAssignmentInputs get ErrTooManyInputs
// instead of an attempt that could not finish.
func ComputeAssignment(c *circuit.Circuit, choose Chooser) (*Assignment, error) {
	n := len(c.Inputs())
	if err := CheckWidth(n); err != nil {
		return nil, err
	}
	a := &Assignment{c: c, systems: make([]*System, 1<<n)}
	in := make([]bool, n)
	for v := 0; v < 1<<n; v++ {
		for i := range in {
			in[i] = v&(1<<i) != 0
		}
		a.systems[v] = Compute(c, in, choose)
	}
	return a, nil
}

// System returns σ(v) for the input vector encoded bitwise (input i is bit
// i).
func (a *Assignment) System(v int) *System { return a.systems[v] }

// NumVectors returns 2^n.
func (a *Assignment) NumVectors() int { return len(a.systems) }

// LogicalPaths returns LP(σ) as a map from logical path key to the path:
// the union of LP(v, σ(v)) over all v.
func (a *Assignment) LogicalPaths() map[string]paths.Logical {
	out := make(map[string]paths.Logical)
	for _, s := range a.systems {
		for _, lp := range s.LogicalPaths() {
			out[lp.Key()] = lp
		}
	}
	return out
}

// RDSet returns RD(σ) = LP(C) \ LP(σ) as a map from logical path key to
// path (Theorem 1: every subset of this set is an RD-set).
func (a *Assignment) RDSet() map[string]paths.Logical {
	lp := a.LogicalPaths()
	out := make(map[string]paths.Logical)
	paths.ForEachLogical(a.c, func(l paths.Logical) bool {
		if _, ok := lp[l.Key()]; !ok {
			out[l.Key()] = paths.Logical{Path: l.Path.Clone(), FinalOne: l.FinalOne}
		}
		return true
	})
	return out
}
