package stabilize

import (
	"errors"
	"strings"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/logic"
	"rdfault/internal/paths"
)

func bits(v, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = v&(1<<i) != 0
	}
	return out
}

func TestExampleThreeSystemsFor111(t *testing.T) {
	c := gen.PaperExample()
	systems := AllSystems(c, []bool{true, true, true})
	if len(systems) != 3 {
		for _, s := range systems {
			t.Logf("system: %s", s)
		}
		t.Fatalf("input 111 admits %d stabilizing systems, want 3 (Figure 1)", len(systems))
	}
}

func TestSystemStabilizesOutput(t *testing.T) {
	// Core definition: fixing only the values inside S must force the PO
	// value, regardless of all other gates. We verify with the implication
	// engine: asserting the PI values of S's included PIs... stronger: we
	// check by brute force that every full input vector agreeing with v on
	// the PIs included in S yields the same PO value.
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 15, Outputs: 1}, seed)
		n := len(c.Inputs())
		for v := 0; v < 1<<n; v++ {
			in := bits(v, n)
			s := Compute(c, in, ChooseRandom(seed*31+int64(v)))
			ref := c.OutputsOf(c.EvalBool(in))
			// PIs included in S keep their value; all others range free.
			var freeIdx []int
			for i, pi := range c.Inputs() {
				if !s.HasGate(pi) {
					freeIdx = append(freeIdx, i)
				}
			}
			if len(freeIdx) > 6 {
				continue
			}
			for w := 0; w < 1<<len(freeIdx); w++ {
				mod := append([]bool(nil), in...)
				for k, idx := range freeIdx {
					mod[idx] = w&(1<<k) != 0
				}
				got := c.OutputsOf(c.EvalBool(mod))
				for o := range got {
					if got[o] != ref[o] {
						t.Fatalf("seed %d v=%0*b: output %d flipped when non-system PI changed (S=%s)",
							seed, n, v, o, s.String())
					}
				}
			}
		}
	}
}

// TestSystemMinimal checks the minimality remark after Definition 2: a
// stabilizing system includes at most one controlling input per gate, and
// includes all inputs only when all are non-controlling.
func TestSystemStructure(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 12, Outputs: 2}, seed)
		n := len(c.Inputs())
		for v := 0; v < 1<<n; v++ {
			in := bits(v, n)
			val := c.EvalBool(in)
			s := Compute(c, in, ChooseRandom(seed))
			for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
				if !s.HasGate(g) {
					// No lead of an excluded gate may be included.
					for pin := range c.Fanin(g) {
						if s.HasLead(g, pin) {
							t.Fatalf("lead of excluded gate %q included", c.Gate(g).Name)
						}
					}
					continue
				}
				t2 := c.Type(g)
				ctrlVal, hasCtrl := t2.Controlling()
				if !hasCtrl {
					continue
				}
				nCtrlIncluded, nIncluded := 0, 0
				anyCtrl := false
				for pin, f := range c.Fanin(g) {
					if val[f] == ctrlVal {
						anyCtrl = true
					}
					if s.HasLead(g, pin) {
						nIncluded++
						if val[f] == ctrlVal {
							nCtrlIncluded++
						}
					}
				}
				if anyCtrl {
					if nIncluded != 1 || nCtrlIncluded != 1 {
						t.Fatalf("gate %q with controlling input: %d leads included (%d controlling), want exactly 1 controlling",
							c.Gate(g).Name, nIncluded, nCtrlIncluded)
					}
				} else {
					if nIncluded != len(c.Fanin(g)) {
						t.Fatalf("gate %q all-non-controlling: %d of %d leads included",
							c.Gate(g).Name, nIncluded, len(c.Fanin(g)))
					}
				}
			}
		}
	}
}

func TestExampleOptimalAssignment(t *testing.T) {
	c := gen.PaperExample()
	// Pin-order sort realizes the optimum (Figure 5): |LP(sigma^pi)| = 5.
	a, err := ComputeAssignment(c, ChooseBySort(circuit.PinOrderSort(c)))
	if err != nil {
		t.Fatal(err)
	}
	lp := a.LogicalPaths()
	if len(lp) != 5 {
		for k := range lp {
			t.Logf("selected: %s", k)
		}
		t.Fatalf("|LP(sigma^pi)| = %d, want 5 (Example 3 / Figure 4)", len(lp))
	}
	rd := a.RDSet()
	if len(rd) != 3 {
		t.Fatalf("|RD| = %d, want 3", len(rd))
	}
	// Inverse sort degrades to selecting everything.
	inv, err := ComputeAssignment(c, ChooseBySort(circuit.PinOrderSort(c).Inverse()))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(inv.LogicalPaths()); got != 8 {
		t.Fatalf("inverse sort |LP| = %d, want 8", got)
	}
}

func TestExampleSixPathAssignment(t *testing.T) {
	// A complete stabilizing assignment with |LP(sigma)| = 6 exists
	// (Figure 2): prefer pin 1 of gate o (input c) but pin 0 elsewhere.
	c := gen.PaperExample()
	o, _ := c.GateByName("o")
	choose := func(_ *circuit.Circuit, g circuit.GateID, ctrl []int) int {
		if g == o {
			return ctrl[len(ctrl)-1]
		}
		return ctrl[0]
	}
	a, err := ComputeAssignment(c, choose)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.LogicalPaths()); got != 6 {
		t.Fatalf("|LP(sigma)| = %d, want 6 (Example 2)", got)
	}
}

// TestTheorem1RDSetSound validates Theorem 1 behaviourally on the logic
// level: removing the RD paths and testing only LP(sigma) is sound in the
// sense that LP(sigma) covers, for every input vector, a stabilizing
// system. Full timing validation lives in package sim.
func TestAssignmentCoversEveryVector(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 14, Outputs: 2}, seed)
		a, err := ComputeAssignment(c, ChooseRandom(seed))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < a.NumVectors(); v++ {
			s := a.System(v)
			lps := s.LogicalPaths()
			// Each logical path of the system must carry the final value
			// of its PI under v.
			in := bits(v, len(c.Inputs()))
			idx := map[circuit.GateID]int{}
			for i, pi := range c.Inputs() {
				idx[pi] = i
			}
			for _, lp := range lps {
				if lp.FinalOne != in[idx[lp.Path.PI()]] {
					t.Fatalf("seed %d v=%d: logical path transition does not match input value", seed, v)
				}
			}
		}
	}
}

func TestLemma1Subset(t *testing.T) {
	// LP(sigma) never shrinks below the paths present in every assignment
	// and never exceeds the full path set; exact containment against FS/T
	// is tested in package core where those sets are computed.
	c := gen.PaperExample()
	total := 0
	paths.ForEachLogical(c, func(paths.Logical) bool { total++; return true })
	for seed := int64(0); seed < 20; seed++ {
		a, err := ComputeAssignment(c, ChooseRandom(seed))
		if err != nil {
			t.Fatal(err)
		}
		n := len(a.LogicalPaths())
		if n < 5 || n > total {
			t.Fatalf("seed %d: |LP(sigma)| = %d outside [5,%d]", seed, n, total)
		}
	}
}

func TestSystemLeadsConsistent(t *testing.T) {
	c := gen.PaperExample()
	s := Compute(c, []bool{true, true, true}, ChooseFirst)
	if s.NumLeads() == 0 {
		t.Fatal("empty system")
	}
	if !s.HasGate(c.Outputs()[0]) {
		t.Fatal("PO not in system")
	}
	if s.Circuit() != c {
		t.Fatal("Circuit() mismatch")
	}
	if got := s.Input(); len(got) != 3 || !got[0] {
		t.Fatalf("Input() = %v", got)
	}
}

func TestComputeAssignmentRejectsWideCircuits(t *testing.T) {
	b := circuit.NewBuilder("wide")
	var ins []circuit.GateID
	for i := 0; i < 25; i++ {
		ins = append(ins, b.Input(string(rune('a'+i%26))+string(rune('0'+i/26))))
	}
	g := b.Gate(circuit.And, "g", ins...)
	b.Output("po", g)
	c := b.MustBuild()
	a, err := ComputeAssignment(c, nil)
	if a != nil || err == nil {
		t.Fatalf("ComputeAssignment on 25 inputs = (%v, %v), want a nil assignment and an error", a, err)
	}
	if !errors.Is(err, ErrTooManyInputs) {
		t.Errorf("err = %v, want errors.Is(err, ErrTooManyInputs)", err)
	}
	var wide *TooManyInputsError
	if !errors.As(err, &wide) {
		t.Fatalf("err = %v, want a *TooManyInputsError", err)
	}
	if wide.Inputs != 25 || wide.Max != MaxAssignmentInputs {
		t.Errorf("TooManyInputsError = %+v, want Inputs=25 Max=%d", wide, MaxAssignmentInputs)
	}
}

// TestCheckWidthBoundary pins the exhaustive limit exactly: 24 inputs is
// the last width CheckWidth admits and 25 the first it refuses, with the
// typed error carrying both numbers. Every exhaustive entry point
// (ComputeAssignment here, oracle.Classify elsewhere) funnels through
// CheckWidth, so this boundary is the system-wide one.
func TestCheckWidthBoundary(t *testing.T) {
	if MaxAssignmentInputs != 24 {
		t.Fatalf("MaxAssignmentInputs = %d, want 24 (update this test with the limit)", MaxAssignmentInputs)
	}
	if err := CheckWidth(24); err != nil {
		t.Fatalf("CheckWidth(24) = %v, want nil at the boundary", err)
	}
	err := CheckWidth(25)
	if err == nil {
		t.Fatal("CheckWidth(25) = nil, want the typed width error")
	}
	if !errors.Is(err, ErrTooManyInputs) {
		t.Errorf("CheckWidth(25) err = %v, want errors.Is ErrTooManyInputs", err)
	}
	var wide *TooManyInputsError
	if !errors.As(err, &wide) {
		t.Fatalf("CheckWidth(25) err = %v, want a *TooManyInputsError", err)
	}
	if wide.Inputs != 25 || wide.Max != 24 {
		t.Errorf("TooManyInputsError = %+v, want Inputs=25 Max=24", wide)
	}
	for _, e := range []string{"25", "24"} {
		if !strings.Contains(wide.Error(), e) {
			t.Errorf("error message %q omits %s", wide.Error(), e)
		}
	}
}

// The stabilizing system never depends on values outside itself: asserting
// only the PIs of the system into the implication engine must force the PO
// value. This is a stronger, implication-level restatement of the
// stabilization property for the systems Algorithm 1 builds.
func TestSystemForcesOutputViaImplications(t *testing.T) {
	c := gen.PaperExample()
	e := logic.NewEngine(c)
	n := len(c.Inputs())
	for v := 0; v < 1<<n; v++ {
		in := bits(v, n)
		s := Compute(c, in, ChooseFirst)
		ref := c.EvalBool(in)
		mark := e.Mark()
		for i, pi := range c.Inputs() {
			if s.HasGate(pi) {
				if !e.Assign(pi, in[i]) {
					t.Fatalf("v=%d: conflict asserting system PIs", v)
				}
			}
		}
		po := c.Outputs()[0]
		want := logic.FromBool(ref[po])
		if got := e.Value(po); got != want {
			t.Errorf("v=%03b: implications gave PO=%v, want %v (system %s)", v, got, want, s.String())
		}
		e.BacktrackTo(mark)
	}
}

func BenchmarkComputeSystem(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 16, Gates: 400, Outputs: 8}, 9)
	in := make([]bool, 16)
	for i := range in {
		in[i] = i%2 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(c, in, nil)
	}
}
