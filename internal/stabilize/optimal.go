package stabilize

import (
	"fmt"
	"sort"

	"rdfault/internal/circuit"
)

// AllSystems enumerates every distinct stabilizing system Algorithm 1 can
// produce for input v, by exploring all Step 2(b) decision sequences.
// The result is deduplicated by lead set.
func AllSystems(c *circuit.Circuit, v []bool) []*System {
	seen := map[string]*System{}
	var order []string
	var explore func(prefix []int)
	explore = func(prefix []int) {
		var radices []int
		idx := 0
		choose := func(_ *circuit.Circuit, _ circuit.GateID, ctrl []int) int {
			if idx < len(prefix) {
				k := prefix[idx]
				idx++
				return ctrl[k]
			}
			radices = append(radices, len(ctrl))
			idx++
			return ctrl[0]
		}
		s := Compute(c, v, choose)
		key := s.String()
		if _, dup := seen[key]; !dup {
			seen[key] = s
			order = append(order, key)
		}
		base := append([]int{}, prefix...)
		for _, r := range radices {
			for k := 1; k < r; k++ {
				explore(append(append([]int{}, base...), k))
			}
			base = append(base, 0)
		}
	}
	explore(nil)
	out := make([]*System, 0, len(order))
	for _, k := range order {
		out = append(out, seen[k])
	}
	return out
}

// Optimal holds the result of the exhaustive assignment search.
type Optimal struct {
	// Assignment achieves the minimum.
	Assignment *Assignment
	// Size is the minimal |LP(sigma)| over ALL complete stabilizing
	// assignments — the unrestricted optimum that the input-sort
	// restriction of Section IV approximates.
	Size int
	// Explored counts search nodes (after pruning).
	Explored int64
	// Exact is false when the node budget stopped the search; Size is
	// then only an upper bound on the optimum.
	Exact bool
}

// OptimalAssignment minimizes |LP(σ)| over every complete stabilizing
// assignment by branch and bound over the per-vector choices, visiting
// at most maxNodes search nodes (0 = unlimited). Exponential in both the
// input count and the choice structure: intended for the paper's example
// and similarly tiny circuits (at most 12 inputs). It gives the gold
// standard against which the restricted search space of σ^π assignments
// is measured; when the budget runs out the result is the best incumbent
// and Optimal.Exact is false.
func OptimalAssignment(c *circuit.Circuit, maxNodes int64) (*Optimal, error) {
	n := len(c.Inputs())
	if n > 12 {
		return nil, fmt.Errorf("stabilize: OptimalAssignment on %d inputs (max 12)", n)
	}
	type option struct {
		sys  *System
		keys []string
	}
	type vecChoices struct {
		vec  int
		opts []option
	}
	all := make([]vecChoices, 0, 1<<n)
	in := make([]bool, n)
	for v := 0; v < 1<<n; v++ {
		for i := range in {
			in[i] = v&(1<<i) != 0
		}
		systems := AllSystems(c, in)
		vc := vecChoices{vec: v}
		for _, s := range systems {
			var keys []string
			for _, lp := range s.LogicalPaths() {
				keys = append(keys, lp.Key())
			}
			sort.Strings(keys)
			vc.opts = append(vc.opts, option{sys: s, keys: keys})
		}
		all = append(all, vc)
	}
	// Fewest-options-first ordering shrinks the branching factor early.
	sort.SliceStable(all, func(i, j int) bool { return len(all[i].opts) < len(all[j].opts) })

	opt := &Optimal{Size: 1 << 62, Exact: true}
	chosen := make([]*System, len(all))
	best := make([]*System, len(all))
	union := map[string]int{}

	var bb func(i int)
	bb = func(i int) {
		if maxNodes > 0 && opt.Explored >= maxNodes {
			opt.Exact = false
			return
		}
		opt.Explored++
		if len(union) >= opt.Size {
			return // bound: the union only grows
		}
		if i == len(all) {
			opt.Size = len(union)
			copy(best, chosen)
			return
		}
		for _, o := range all[i].opts {
			var added []string
			for _, k := range o.keys {
				union[k]++
				if union[k] == 1 {
					added = append(added, k)
				}
			}
			chosen[i] = o.sys
			bb(i + 1)
			for _, k := range o.keys {
				union[k]--
			}
			for _, k := range added {
				delete(union, k)
			}
		}
	}
	bb(0)

	// Rebuild an Assignment indexed by vector.
	systems := make([]*System, 1<<n)
	for i, vc := range all {
		systems[vc.vec] = best[i]
	}
	opt.Assignment = &Assignment{c: c, systems: systems}
	return opt, nil
}
