package stabilize

import (
	"fmt"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
)

func TestAllSystemsExample(t *testing.T) {
	c := gen.PaperExample()
	if got := len(AllSystems(c, []bool{true, true, true})); got != 3 {
		t.Fatalf("111 has %d systems, want 3 (Figure 1)", got)
	}
	// Forced cases have exactly one system.
	if got := len(AllSystems(c, []bool{true, false, false})); got != 1 {
		t.Fatalf("100 has %d systems, want 1", got)
	}
}

func TestAllSystemsAreValid(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 4, Gates: 10, Outputs: 2}, seed)
		n := len(c.Inputs())
		for v := 0; v < 1<<n; v++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = v&(1<<i) != 0
			}
			systems := AllSystems(c, in)
			if len(systems) == 0 {
				t.Fatalf("seed %d v=%d: no systems", seed, v)
			}
			keys := map[string]bool{}
			for _, s := range systems {
				k := s.String()
				if keys[k] {
					t.Fatalf("seed %d v=%d: duplicate system", seed, v)
				}
				keys[k] = true
				if !s.HasGate(c.Outputs()[0]) {
					t.Fatalf("seed %d v=%d: PO missing", seed, v)
				}
			}
		}
	}
}

func TestOptimalAssignmentExample(t *testing.T) {
	c := gen.PaperExample()
	opt, err := OptimalAssignment(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Size != 5 {
		t.Fatalf("optimal |LP(sigma)| = %d, want 5 (Example 3)", opt.Size)
	}
	if got := len(opt.Assignment.LogicalPaths()); got != 5 {
		t.Fatalf("assignment realizes %d paths", got)
	}
	// Example 4's claim: the restricted search space (input sorts) still
	// contains the optimum for this circuit.
	pin, err := ComputeAssignment(c, ChooseBySort(circuit.PinOrderSort(c)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pin.LogicalPaths()); got != opt.Size {
		t.Fatalf("sigma^pi achieves %d, unrestricted optimum %d", got, opt.Size)
	}
	if opt.Explored == 0 {
		t.Fatal("no search nodes explored")
	}
}

// TestOptimalNeverWorseThanAnySort: the unrestricted optimum is a lower
// bound for every sort-induced assignment.
func TestOptimalNeverWorseThanAnySort(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 4, Gates: 9, Outputs: 2}, seed)
		opt, err := OptimalAssignment(c, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []circuit.InputSort{
			circuit.PinOrderSort(c),
			circuit.PinOrderSort(c).Inverse(),
		} {
			a, err := ComputeAssignment(c, ChooseBySort(s))
			if err != nil {
				t.Fatal(err)
			}
			if len(a.LogicalPaths()) < opt.Size {
				t.Fatalf("seed %d: sort beat the claimed optimum (%d < %d)",
					seed, len(a.LogicalPaths()), opt.Size)
			}
		}
		// The optimum is itself a valid complete stabilizing assignment:
		// every vector has a system.
		for v := 0; v < opt.Assignment.NumVectors(); v++ {
			if opt.Assignment.System(v) == nil {
				t.Fatalf("seed %d: vector %d lacks a system", seed, v)
			}
		}
	}
}

func TestOptimalAssignmentRejectsWide(t *testing.T) {
	b := circuit.NewBuilder("wide")
	var ins []circuit.GateID
	for i := 0; i < 13; i++ {
		ins = append(ins, b.Input(fmt.Sprintf("i%d", i)))
	}
	b.Output("y", b.Gate(circuit.Or, "g", ins...))
	c := b.MustBuild()
	if _, err := OptimalAssignment(c, 0); err == nil {
		t.Fatal("expected error for 13 inputs")
	}
}
