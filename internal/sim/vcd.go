package sim

import (
	"bufio"
	"container/heap"
	"fmt"
	"io"
	"math"
	"sort"

	"rdfault/internal/circuit"
)

// TraceEvent is one recorded output change.
type TraceEvent struct {
	Time  float64
	Gate  circuit.GateID
	Value bool
}

// Trace is a full switching history of one two-pattern simulation,
// suitable for waveform dumping.
type Trace struct {
	c       *circuit.Circuit
	initial []bool
	events  []TraceEvent
}

// Events returns the recorded changes in time order.
func (tr *Trace) Events() []TraceEvent { return tr.events }

// SimulateTrace is Simulate with full event recording.
func SimulateTrace(c *circuit.Circuit, d Delays, v1, v2 []bool) (*TimingResult, *Trace) {
	val := c.EvalBool(v1)
	tr := &Trace{c: c, initial: append([]bool(nil), val...)}
	res := &TimingResult{
		Final:      val,
		LastChange: make([]float64, c.NumGates()),
	}
	var h eventHeap
	var seq int64
	schedule := func(t float64, g circuit.GateID, v bool) {
		seq++
		heap.Push(&h, event{time: t, seq: seq, gate: g, value: v})
	}
	evalGate := func(g circuit.GateID) bool {
		gate := c.Gate(g)
		var buf [8]bool
		args := buf[:0]
		for _, f := range gate.Fanin {
			args = append(args, val[f])
		}
		return gate.Type.Eval(args)
	}
	for i, pi := range c.Inputs() {
		if v2[i] != val[pi] {
			schedule(d.Gate[pi], pi, v2[i])
		}
	}
	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		if val[e.gate] == e.value {
			continue
		}
		val[e.gate] = e.value
		res.LastChange[e.gate] = e.time
		res.Events++
		tr.events = append(tr.events, TraceEvent{Time: e.time, Gate: e.gate, Value: e.value})
		for _, edge := range c.Fanout(e.gate) {
			schedule(e.time+d.Gate[edge.To], edge.To, evalGate(edge.To))
		}
	}
	res.Final = val
	return res, tr
}

// vcdID generates the compact printable identifier codes VCD uses.
func vcdID(i int) string {
	const alpha = 94 // printable ASCII '!'..'~'
	var b []byte
	for {
		b = append(b, byte('!'+i%alpha))
		i = i/alpha - 1
		if i < 0 {
			break
		}
	}
	return string(b)
}

// WriteVCD emits the trace as an IEEE 1364 Value Change Dump. Event times
// are quantized to 1/1000 of a delay unit (timescale 1ps with delays read
// as nanoseconds). Wire names are the gate names.
func (tr *Trace) WriteVCD(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$date\n  reproduction run\n$end\n")
	fmt.Fprintf(bw, "$version\n  rdfault timing simulator\n$end\n")
	fmt.Fprintf(bw, "$timescale 1ps $end\n")
	fmt.Fprintf(bw, "$scope module %s $end\n", tr.c.Name())
	ids := make([]string, tr.c.NumGates())
	for g := 0; g < tr.c.NumGates(); g++ {
		ids[g] = vcdID(g)
		fmt.Fprintf(bw, "$var wire 1 %s %s $end\n", ids[g], tr.c.Gate(circuit.GateID(g)).Name)
	}
	fmt.Fprintf(bw, "$upscope $end\n$enddefinitions $end\n")
	fmt.Fprintf(bw, "$dumpvars\n")
	for g, v := range tr.initial {
		fmt.Fprintf(bw, "%s%s\n", bit(v), ids[g])
	}
	fmt.Fprintf(bw, "$end\n")
	// Group events by quantized time.
	evs := append([]TraceEvent(nil), tr.events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	last := int64(-1)
	for _, e := range evs {
		t := int64(math.Round(e.Time * 1000))
		if t != last {
			fmt.Fprintf(bw, "#%d\n", t)
			last = t
		}
		fmt.Fprintf(bw, "%s%s\n", bit(e.Value), ids[e.Gate])
	}
	return bw.Flush()
}

func bit(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
