package sim

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
)

func TestSimulateTraceMatchesSimulate(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 20, Outputs: 2}, seed)
		d := RandomDelays(c, seed, 0.5, 2)
		v1 := make([]bool, 5)
		v2 := []bool{true, false, true, true, false}
		plain := Simulate(c, d, v1, v2)
		traced, tr := SimulateTrace(c, d, v1, v2)
		if plain.Events != traced.Events {
			t.Fatalf("seed %d: event counts differ", seed)
		}
		for g := range plain.Final {
			if plain.Final[g] != traced.Final[g] {
				t.Fatalf("seed %d: final values differ", seed)
			}
			if plain.LastChange[g] != traced.LastChange[g] {
				t.Fatalf("seed %d: last-change times differ", seed)
			}
		}
		if int64(len(tr.Events())) != traced.Events {
			t.Fatalf("seed %d: trace has %d events, result counted %d",
				seed, len(tr.Events()), traced.Events)
		}
	}
}

// TestVCDReplay parses the emitted VCD back and replays it: the final
// value of every wire must match the simulation's settled state.
func TestVCDReplay(t *testing.T) {
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 15, Outputs: 2}, 3)
	d := RandomDelays(c, 7, 0.5, 2)
	v1 := []bool{false, true, false, false, true}
	v2 := []bool{true, true, false, true, false}
	res, tr := SimulateTrace(c, d, v1, v2)
	var buf bytes.Buffer
	if err := tr.WriteVCD(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"$timescale", "$enddefinitions", "$dumpvars"} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %s", want)
		}
	}
	// Replay.
	idToName := map[string]string{}
	state := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	inDefs := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "$var"):
			f := strings.Fields(line)
			// $var wire 1 <id> <name> $end
			idToName[f[3]] = f[4]
		case strings.HasPrefix(line, "$enddefinitions"):
			inDefs = false
		case !inDefs && (strings.HasPrefix(line, "0") || strings.HasPrefix(line, "1")):
			id := line[1:]
			if _, ok := idToName[id]; !ok {
				t.Fatalf("change for unknown id %q", id)
			}
			state[idToName[id]] = line[0] == '1'
		case strings.HasPrefix(line, "#"):
			if _, err := strconv.ParseInt(line[1:], 10, 64); err != nil {
				t.Fatalf("bad timestamp %q", line)
			}
		}
	}
	if len(idToName) != c.NumGates() {
		t.Fatalf("declared %d wires, want %d", len(idToName), c.NumGates())
	}
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		name := c.Gate(g).Name
		if state[name] != res.Final[g] {
			t.Fatalf("wire %s replays to %v, simulation settled at %v",
				name, state[name], res.Final[g])
		}
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		id := vcdID(i)
		if id == "" || seen[id] {
			t.Fatalf("id %d = %q duplicate or empty", i, id)
		}
		seen[id] = true
		for _, r := range id {
			if r < '!' || r > '~' {
				t.Fatalf("id %q contains non-printable rune", id)
			}
		}
	}
}
