// Package sim provides logic and timing simulation: 64-way bit-parallel
// pattern simulation and an event-driven two-pattern timing simulator
// with arbitrary per-gate delays (transport delay model).
//
// Its central role in this library is executable validation of Theorem 1:
// for ANY delay assignment (any manufactured implementation C_m) and any
// input pair, the outputs stabilize no later than the slowest logical
// path of the stabilizing system chosen for the second vector. Package
// tests enforce this with randomized implementations.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"rdfault/internal/circuit"
	"rdfault/internal/paths"
)

// EvalParallel simulates 64 input patterns at once: bit k of in[i] is the
// value of input i in pattern k. The returned slice holds one word per
// gate.
func EvalParallel(c *circuit.Circuit, in []uint64) []uint64 {
	if len(in) != len(c.Inputs()) {
		panic(fmt.Sprintf("sim: EvalParallel got %d words for %d inputs", len(in), len(c.Inputs())))
	}
	val := make([]uint64, c.NumGates())
	for i, g := range c.Inputs() {
		val[g] = in[i]
	}
	for _, g := range c.TopoOrder() {
		gate := c.Gate(g)
		switch gate.Type {
		case circuit.Input:
		case circuit.Output, circuit.Buf:
			val[g] = val[gate.Fanin[0]]
		case circuit.Not:
			val[g] = ^val[gate.Fanin[0]]
		case circuit.And, circuit.Nand:
			w := ^uint64(0)
			for _, f := range gate.Fanin {
				w &= val[f]
			}
			if gate.Type == circuit.Nand {
				w = ^w
			}
			val[g] = w
		case circuit.Or, circuit.Nor:
			w := uint64(0)
			for _, f := range gate.Fanin {
				w |= val[f]
			}
			if gate.Type == circuit.Nor {
				w = ^w
			}
			val[g] = w
		}
	}
	return val
}

// Delays assigns a propagation delay to every gate (PIs and PO markers
// normally get 0, but any nonnegative values are allowed — Theorem 1
// quantifies over all of them).
type Delays struct {
	Gate []float64
}

// UnitDelays gives every internal gate delay 1 and PIs/PO markers 0.
func UnitDelays(c *circuit.Circuit) Delays {
	d := Delays{Gate: make([]float64, c.NumGates())}
	for g := range d.Gate {
		switch c.Type(circuit.GateID(g)) {
		case circuit.Input, circuit.Output:
		default:
			d.Gate[g] = 1
		}
	}
	return d
}

// RandomDelays draws independent delays uniformly from [min,max) for
// every internal gate — one simulated "manufactured implementation" C_m.
func RandomDelays(c *circuit.Circuit, seed int64, min, max float64) Delays {
	rng := rand.New(rand.NewSource(seed))
	d := Delays{Gate: make([]float64, c.NumGates())}
	for g := range d.Gate {
		switch c.Type(circuit.GateID(g)) {
		case circuit.Input, circuit.Output:
		default:
			d.Gate[g] = min + rng.Float64()*(max-min)
		}
	}
	return d
}

// PathDelay returns the delay of a physical path: the sum of the delays
// of its gates (the PI contributes its own delay too, normally 0).
func (d Delays) PathDelay(p paths.Path) float64 {
	sum := 0.0
	for _, g := range p.Gates {
		sum += d.Gate[g]
	}
	return sum
}

// TimingResult reports one two-pattern event simulation.
type TimingResult struct {
	// Final holds the settled value of every gate (equals EvalBool(v2)).
	Final []bool
	// LastChange is the time of each gate's final transition; 0 when the
	// gate never switched after t=0.
	LastChange []float64
	// Events counts processed output-change events.
	Events int64
}

// StabilizeTime returns the time by which all primary outputs reached
// their final values.
func (r *TimingResult) StabilizeTime(c *circuit.Circuit) float64 {
	t := 0.0
	for _, po := range c.Outputs() {
		if r.LastChange[po] > t {
			t = r.LastChange[po]
		}
	}
	return t
}

type event struct {
	time  float64
	seq   int64 // tie-break for determinism
	gate  circuit.GateID
	value bool
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() event   { return h[0] }

// Simulate applies v1, lets the circuit settle, then applies v2 at time 0
// and runs event-driven simulation (transport delay) to quiescence.
func Simulate(c *circuit.Circuit, d Delays, v1, v2 []bool) *TimingResult {
	val := c.EvalBool(v1)
	res := &TimingResult{
		Final:      val,
		LastChange: make([]float64, c.NumGates()),
	}
	var h eventHeap
	var seq int64
	schedule := func(t float64, g circuit.GateID, v bool) {
		seq++
		heap.Push(&h, event{time: t, seq: seq, gate: g, value: v})
	}
	evalGate := func(g circuit.GateID) bool {
		gate := c.Gate(g)
		var buf [8]bool
		args := buf[:0]
		for _, f := range gate.Fanin {
			args = append(args, val[f])
		}
		return gate.Type.Eval(args)
	}
	// Input switches at t=0 (PIs may carry a delay of their own).
	for i, pi := range c.Inputs() {
		if v2[i] != val[pi] {
			schedule(d.Gate[pi], pi, v2[i])
		}
	}
	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		if val[e.gate] == e.value {
			continue
		}
		val[e.gate] = e.value
		res.LastChange[e.gate] = e.time
		res.Events++
		for _, edge := range c.Fanout(e.gate) {
			// Transport delay: always schedule the re-evaluated value;
			// no-change events are dropped at pop time.
			schedule(e.time+d.Gate[edge.To], edge.To, evalGate(edge.To))
		}
	}
	res.Final = val
	return res
}
