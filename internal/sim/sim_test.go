package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
	"rdfault/internal/stabilize"
)

func TestEvalParallelMatchesEvalBool(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 25, Outputs: 3}, seed)
		n := len(c.Inputs())
		// All 64 patterns = first 64 input vectors.
		words := make([]uint64, n)
		for k := 0; k < 64; k++ {
			for i := 0; i < n; i++ {
				if (k>>i)&1 == 1 {
					words[i] |= 1 << k
				}
			}
		}
		got := EvalParallel(c, words)
		for k := 0; k < 64 && k < 1<<n; k++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = (k>>i)&1 == 1
			}
			want := c.EvalBool(in)
			for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
				if ((got[g]>>k)&1 == 1) != want[g] {
					t.Fatalf("seed %d pattern %d gate %q: parallel %v, serial %v",
						seed, k, c.Gate(g).Name, (got[g]>>k)&1 == 1, want[g])
				}
			}
		}
	}
}

func TestEvalParallelArityPanic(t *testing.T) {
	c := gen.PaperExample()
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong arity")
		}
	}()
	EvalParallel(c, []uint64{0})
}

func TestSimulateSettlesToV2(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 20, Outputs: 2}, seed)
		d := RandomDelays(c, seed*7, 0.5, 3)
		rng := rand.New(rand.NewSource(seed))
		n := len(c.Inputs())
		for trial := 0; trial < 40; trial++ {
			v1 := make([]bool, n)
			v2 := make([]bool, n)
			for i := range v1 {
				v1[i] = rng.Intn(2) == 0
				v2[i] = rng.Intn(2) == 0
			}
			res := Simulate(c, d, v1, v2)
			want := c.EvalBool(v2)
			for g := range want {
				if res.Final[g] != want[g] {
					t.Fatalf("seed %d: gate %d settled wrong", seed, g)
				}
			}
		}
	}
}

func TestSimulateNoChangeNoEvents(t *testing.T) {
	c := gen.PaperExample()
	d := UnitDelays(c)
	v := []bool{true, false, true}
	res := Simulate(c, d, v, v)
	if res.Events != 0 {
		t.Errorf("events = %d, want 0 for identical vectors", res.Events)
	}
	if res.StabilizeTime(c) != 0 {
		t.Errorf("stabilize time = %v, want 0", res.StabilizeTime(c))
	}
}

func TestUnitDelayChainTiming(t *testing.T) {
	// A chain of 3 inverters with unit delays: output settles at t=3.
	b := circuit.NewBuilder("chain")
	a := b.Input("a")
	n1 := b.Gate(circuit.Not, "n1", a)
	n2 := b.Gate(circuit.Not, "n2", n1)
	n3 := b.Gate(circuit.Not, "n3", n2)
	b.Output("po", n3)
	c := b.MustBuild()
	d := UnitDelays(c)
	res := Simulate(c, d, []bool{false}, []bool{true})
	if got := res.StabilizeTime(c); got != 3 {
		t.Errorf("stabilize = %v, want 3", got)
	}
}

func TestPathDelay(t *testing.T) {
	c := gen.PaperExample()
	d := UnitDelays(c)
	ps := paths.Collect(c, 0)
	for _, p := range ps {
		want := float64(p.Len() - 2) // PI and PO marker have delay 0
		if got := d.PathDelay(p); got != want {
			t.Errorf("path %s delay %v, want %v", p.String(c), got, want)
		}
	}
}

func TestGlitchPropagation(t *testing.T) {
	// y = AND(a, NOT(a)): a rising 0->1 with slow inverter produces a
	// 1-pulse on y under transport delay.
	b := circuit.NewBuilder("glitch")
	a := b.Input("a")
	n := b.Gate(circuit.Not, "n", a)
	g := b.Gate(circuit.And, "g", a, n)
	b.Output("po", g)
	c := b.MustBuild()
	d := UnitDelays(c)
	d.Gate[n] = 5 // slow inverter: overlap window
	res := Simulate(c, d, []bool{false}, []bool{true})
	if res.Final[g] != false {
		t.Fatal("glitch circuit settled wrong")
	}
	// The AND output must have pulsed: its last change is the falling
	// edge after the inverter caught up.
	if res.LastChange[g] == 0 {
		t.Fatal("glitch did not propagate under transport delay")
	}
	if want := 5.0 + 1.0; math.Abs(res.LastChange[g]-want) > 1e-9 {
		t.Errorf("glitch settles at %v, want %v", res.LastChange[g], want)
	}
}

// TestTheorem1 is the behavioural validation of the paper's central
// theorem: for random implementations (delay assignments) and random
// complete stabilizing assignments, every input pair settles the outputs
// no later than the slowest logical path in the stabilizing system chosen
// for the destination vector.
func TestTheorem1(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 18, Outputs: 2}, seed)
		n := len(c.Inputs())
		assignment, err := stabilize.ComputeAssignment(c, stabilize.ChooseRandom(seed*3))
		if err != nil {
			t.Fatal(err)
		}
		for impl := int64(0); impl < 3; impl++ {
			d := RandomDelays(c, seed*100+impl, 0.1, 4)
			rng := rand.New(rand.NewSource(seed*999 + impl))
			for trial := 0; trial < 30; trial++ {
				v1i := rng.Intn(1 << n)
				v2i := rng.Intn(1 << n)
				v1 := make([]bool, n)
				v2 := make([]bool, n)
				for i := 0; i < n; i++ {
					v1[i] = v1i&(1<<i) != 0
					v2[i] = v2i&(1<<i) != 0
				}
				res := Simulate(c, d, v1, v2)
				// Bound: slowest logical path of sigma(v2).
				bound := 0.0
				sys := assignment.System(v2i)
				sys.ForEachPath(func(p paths.Path) bool {
					if pd := d.PathDelay(p); pd > bound {
						bound = pd
					}
					return true
				})
				if got := res.StabilizeTime(c); got > bound+1e-9 {
					t.Fatalf("seed %d impl %d v1=%0*b v2=%0*b: stabilized at %v > bound %v (Theorem 1 violated)",
						seed, impl, n, v1i, n, v2i, got, bound)
				}
			}
		}
	}
}

// TestTheorem1Tight: the bound is achieved by some input pair on a chain
// (the slowest path is the only path).
func TestTheorem1Tight(t *testing.T) {
	b := circuit.NewBuilder("chain")
	a := b.Input("a")
	n1 := b.Gate(circuit.Not, "n1", a)
	b.Output("po", n1)
	c := b.MustBuild()
	d := UnitDelays(c)
	res := Simulate(c, d, []bool{false}, []bool{true})
	sys := stabilize.Compute(c, []bool{true}, nil)
	bound := 0.0
	sys.ForEachPath(func(p paths.Path) bool {
		if pd := d.PathDelay(p); pd > bound {
			bound = pd
		}
		return true
	})
	if got := res.StabilizeTime(c); got != bound {
		t.Errorf("chain: stabilize %v != bound %v", got, bound)
	}
}

func BenchmarkSimulate(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 32, Gates: 1500, Outputs: 16}, 9)
	d := RandomDelays(c, 1, 0.5, 2)
	n := len(c.Inputs())
	v1 := make([]bool, n)
	v2 := make([]bool, n)
	for i := range v2 {
		v2[i] = i%2 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(c, d, v1, v2)
	}
}

func BenchmarkEvalParallel(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 64, Gates: 4000, Outputs: 32}, 2)
	in := make([]uint64, 64)
	for i := range in {
		in[i] = rand.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalParallel(c, in)
	}
}

// Property (testing/quick): every bit lane of the parallel evaluator
// agrees with scalar simulation.
func TestQuickParallelLanes(t *testing.T) {
	c := gen.RandomCircuit("q", gen.RandomOptions{Inputs: 8, Gates: 30, Outputs: 3}, 21)
	n := len(c.Inputs())
	f := func(seed int64, lane uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		words := make([]uint64, n)
		for i := range words {
			words[i] = rng.Uint64()
		}
		k := int(lane) % 64
		par := EvalParallel(c, words)
		in := make([]bool, n)
		for i := range in {
			in[i] = (words[i]>>k)&1 == 1
		}
		ser := c.EvalBool(in)
		for g := 0; g < c.NumGates(); g++ {
			if ((par[g]>>k)&1 == 1) != ser[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: simulation final state is independent of the starting vector
// (v2 alone determines where the circuit settles).
func TestQuickSettledStateIndependentOfV1(t *testing.T) {
	c := gen.RandomCircuit("q", gen.RandomOptions{Inputs: 6, Gates: 20, Outputs: 2}, 23)
	d := RandomDelays(c, 5, 0.5, 2)
	n := len(c.Inputs())
	f := func(a, b, target uint16) bool {
		mk := func(v uint16) []bool {
			out := make([]bool, n)
			for i := range out {
				out[i] = v&(1<<i) != 0
			}
			return out
		}
		v2 := mk(target)
		r1 := Simulate(c, d, mk(a), v2)
		r2 := Simulate(c, d, mk(b), v2)
		for g := range r1.Final {
			if r1.Final[g] != r2.Final[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
