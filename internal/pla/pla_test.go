package pla

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `
# two-output sample
.i 3
.o 2
.ilb a b c
.ob f g
.p 4
1-0 10
01- 11
--1 01
111 10
.e
`

func TestParseSample(t *testing.T) {
	cv, err := Parse("sample", strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if cv.NumIn != 3 || cv.NumOut != 2 || len(cv.Cubes) != 4 {
		t.Fatalf("parsed %d/%d/%d", cv.NumIn, cv.NumOut, len(cv.Cubes))
	}
	if cv.InName(0) != "a" || cv.OutName(1) != "g" {
		t.Error("names not parsed")
	}
	if cv.Cubes[0].In[0] != T1 || cv.Cubes[0].In[1] != TDash || cv.Cubes[0].In[2] != T0 {
		t.Errorf("cube 0 input = %v", cv.Cubes[0].In)
	}
	if !cv.Cubes[0].Out[0] || cv.Cubes[0].Out[1] {
		t.Errorf("cube 0 output = %v", cv.Cubes[0].Out)
	}
}

func TestEval(t *testing.T) {
	cv, err := Parse("sample", strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// f = a&!c | !a&b | a&b&c ; g = !a&b | c
	for v := 0; v < 8; v++ {
		a, b, c := v&1 != 0, v&2 != 0, v&4 != 0
		wantF := (a && !c) || (!a && b) || (a && b && c)
		wantG := (!a && b) || c
		got := cv.Eval([]bool{a, b, c})
		if got[0] != wantF || got[1] != wantG {
			t.Errorf("v=%d: got %v, want [%v %v]", v, got, wantF, wantG)
		}
	}
}

func TestEvalArityPanic(t *testing.T) {
	cv, _ := Parse("sample", strings.NewReader(sample))
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	cv.Eval([]bool{true})
}

func TestRoundTrip(t *testing.T) {
	cv, err := Parse("sample", strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, cv); err != nil {
		t.Fatal(err)
	}
	cv2, err := Parse("rt", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		a := cv.Eval(in)
		b := cv2.Eval(in)
		for o := range a {
			if a[o] != b[o] {
				t.Fatalf("round trip differs at %v output %d", in, o)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad .i":        ".i x\n.o 1\n1 1\n",
		"neg .o":        ".i 1\n.o -2\n",
		"cube early":    "1 1\n.i 1\n.o 1\n",
		"cube length":   ".i 2\n.o 1\n1 1\n",
		"bad inlit":     ".i 1\n.o 1\nz 1\n",
		"bad outlit":    ".i 1\n.o 1\n1 z\n",
		"bad directive": ".i 1\n.o 1\n.frob\n1 1\n",
		"p mismatch":    ".i 1\n.o 1\n.p 2\n1 1\n.e\n",
		"bad type":      ".i 1\n.o 1\n.type fd\n1 1\n",
	}
	for name, src := range cases {
		if _, err := Parse(name, strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseEsoterics(t *testing.T) {
	// '2' as dash, '~'/'-' as output zero, fr type accepted.
	src := ".i 2\n.o 2\n.type fr\n12 1~\n01 -1\n"
	cv, err := Parse("eso", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if cv.Cubes[0].In[1] != TDash {
		t.Error("'2' not treated as dash")
	}
	if cv.Cubes[0].Out[1] || cv.Cubes[1].Out[0] {
		t.Error("output zeros misparsed")
	}
}

func TestValidate(t *testing.T) {
	bad := &Cover{Name: "b", NumIn: 2, NumOut: 1, Cubes: []Cube{{In: []Trit{T1}, Out: []bool{true}}}}
	if err := bad.Validate(); err == nil {
		t.Error("arity mismatch not caught")
	}
	bad2 := &Cover{Name: "b2", NumIn: 2, NumOut: 1, InNames: []string{"a"}}
	if err := bad2.Validate(); err == nil {
		t.Error("name count mismatch not caught")
	}
	if (&Cover{Name: "z"}).Validate() == nil {
		t.Error("zero cover not caught")
	}
}

func TestTritString(t *testing.T) {
	if T0.String() != "0" || T1.String() != "1" || TDash.String() != "-" {
		t.Error("trit strings")
	}
}

func TestDefaultNames(t *testing.T) {
	cv := &Cover{Name: "n", NumIn: 2, NumOut: 1}
	if cv.InName(1) != "x1" || cv.OutName(0) != "f0" {
		t.Error("default names")
	}
}
