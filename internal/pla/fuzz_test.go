package pla

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks the Espresso reader never panics and accepted covers
// round trip through Write.
func FuzzParse(f *testing.F) {
	f.Add(".i 2\n.o 1\n11 1\n-0 1\n.e\n")
	f.Add(".i 3\n.o 2\n.ilb a b c\n.ob f g\n1-0 10\n")
	f.Add(".i 1\n.o 1\n.p 1\n1 1\n")
	f.Add("junk")
	f.Add(".i 2\n.o 1\n.ilb a\n11 1\n")
	f.Add(".p 3\n.i 1\n.o 1\n1 1\n")
	f.Add(".i 2\n.o 1\n112\n")
	f.Fuzz(func(t *testing.T, src string) {
		cv, err := Parse("fuzz", strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, cv); err != nil {
			t.Fatalf("accepted cover failed to write: %v", err)
		}
		cv2, err := Parse("fuzz2", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("writer output rejected: %v\n%s", err, buf.String())
		}
		if len(cv2.Cubes) != len(cv.Cubes) || cv2.NumIn != cv.NumIn || cv2.NumOut != cv.NumOut {
			t.Fatal("round trip changed dimensions")
		}
	})
}
