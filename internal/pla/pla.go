// Package pla models two-level covers and reads/writes the Espresso
// ".pla" format used by the MCNC benchmarks of Table III. Only the
// default fr-type semantics are supported: a '1' in the output part puts
// the cube in that output's ON-set, '0' and '~' leave it out.
package pla

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trit is one input literal position of a cube.
type Trit uint8

// Input literal values: the input must be 0, must be 1, or is absent from
// the cube (don't care).
const (
	T0 Trit = iota
	T1
	TDash
)

// String returns "0", "1" or "-".
func (t Trit) String() string {
	switch t {
	case T0:
		return "0"
	case T1:
		return "1"
	}
	return "-"
}

// Cube is one product term: an input part and the set of outputs whose
// ON-set it belongs to.
type Cube struct {
	In  []Trit
	Out []bool
}

// Covers reports whether the cube contains the input vector.
func (cb Cube) Covers(in []bool) bool {
	for i, t := range cb.In {
		if t == T0 && in[i] || t == T1 && !in[i] {
			return false
		}
	}
	return true
}

// Cover is a multi-output two-level cover.
type Cover struct {
	Name     string
	NumIn    int
	NumOut   int
	InNames  []string // optional; generated when absent
	OutNames []string
	Cubes    []Cube
}

// Eval computes all outputs for one input vector.
func (cv *Cover) Eval(in []bool) []bool {
	if len(in) != cv.NumIn {
		panic(fmt.Sprintf("pla: Eval got %d values for %d inputs", len(in), cv.NumIn))
	}
	out := make([]bool, cv.NumOut)
	for _, cb := range cv.Cubes {
		if !cb.Covers(in) {
			continue
		}
		for o, b := range cb.Out {
			if b {
				out[o] = true
			}
		}
	}
	return out
}

// Validate checks structural consistency.
func (cv *Cover) Validate() error {
	if cv.NumIn <= 0 || cv.NumOut <= 0 {
		return fmt.Errorf("pla %s: needs positive .i and .o", cv.Name)
	}
	if cv.InNames != nil && len(cv.InNames) != cv.NumIn {
		return fmt.Errorf("pla %s: %d input names for %d inputs", cv.Name, len(cv.InNames), cv.NumIn)
	}
	if cv.OutNames != nil && len(cv.OutNames) != cv.NumOut {
		return fmt.Errorf("pla %s: %d output names for %d outputs", cv.Name, len(cv.OutNames), cv.NumOut)
	}
	for i, cb := range cv.Cubes {
		if len(cb.In) != cv.NumIn || len(cb.Out) != cv.NumOut {
			return fmt.Errorf("pla %s: cube %d has wrong arity", cv.Name, i)
		}
	}
	return nil
}

// InName returns the name of input i ("x<i>" when unnamed).
func (cv *Cover) InName(i int) string {
	if cv.InNames != nil {
		return cv.InNames[i]
	}
	return fmt.Sprintf("x%d", i)
}

// OutName returns the name of output o ("f<o>" when unnamed).
func (cv *Cover) OutName(o int) string {
	if cv.OutNames != nil {
		return cv.OutNames[o]
	}
	return fmt.Sprintf("f%d", o)
}

// Parse reads a cover in Espresso format.
func Parse(name string, r io.Reader) (*Cover, error) {
	cv := &Cover{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	declared := -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".i", ".o", ".p":
			if len(fields) < 2 {
				return nil, fmt.Errorf("pla %s:%d: %s needs an argument", name, lineNo, fields[0])
			}
		}
		switch fields[0] {
		case ".i":
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("pla %s:%d: bad .i", name, lineNo)
			}
			cv.NumIn = n
		case ".o":
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("pla %s:%d: bad .o", name, lineNo)
			}
			cv.NumOut = n
		case ".p":
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("pla %s:%d: bad .p", name, lineNo)
			}
			declared = n
		case ".ilb":
			cv.InNames = append([]string(nil), fields[1:]...)
		case ".ob":
			cv.OutNames = append([]string(nil), fields[1:]...)
		case ".e", ".end":
			// done
		case ".type":
			if len(fields) > 1 && fields[1] != "fr" {
				return nil, fmt.Errorf("pla %s:%d: unsupported .type %s (only fr)", name, lineNo, fields[1])
			}
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, fmt.Errorf("pla %s:%d: unsupported directive %s", name, lineNo, fields[0])
			}
			if cv.NumIn == 0 || cv.NumOut == 0 {
				return nil, fmt.Errorf("pla %s:%d: cube before .i/.o", name, lineNo)
			}
			// Cube line: input part then output part, possibly joined.
			joined := strings.Join(fields, "")
			if len(joined) != cv.NumIn+cv.NumOut {
				return nil, fmt.Errorf("pla %s:%d: cube %q has %d characters, want %d",
					name, lineNo, joined, len(joined), cv.NumIn+cv.NumOut)
			}
			cb := Cube{In: make([]Trit, cv.NumIn), Out: make([]bool, cv.NumOut)}
			for i := 0; i < cv.NumIn; i++ {
				switch joined[i] {
				case '0':
					cb.In[i] = T0
				case '1':
					cb.In[i] = T1
				case '-', '2':
					cb.In[i] = TDash
				default:
					return nil, fmt.Errorf("pla %s:%d: bad input literal %q", name, lineNo, joined[i])
				}
			}
			for o := 0; o < cv.NumOut; o++ {
				switch joined[cv.NumIn+o] {
				case '1', '4':
					cb.Out[o] = true
				case '0', '~', '2', '-':
					cb.Out[o] = false
				default:
					return nil, fmt.Errorf("pla %s:%d: bad output literal %q", name, lineNo, joined[cv.NumIn+o])
				}
			}
			cv.Cubes = append(cv.Cubes, cb)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pla %s: %v", name, err)
	}
	if declared >= 0 && declared != len(cv.Cubes) {
		return nil, fmt.Errorf("pla %s: .p declares %d cubes, found %d", name, declared, len(cv.Cubes))
	}
	if err := cv.Validate(); err != nil {
		return nil, err
	}
	return cv, nil
}

// Write emits the cover in Espresso format.
func Write(w io.Writer, cv *Cover) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n.i %d\n.o %d\n", cv.Name, cv.NumIn, cv.NumOut)
	if cv.InNames != nil {
		fmt.Fprintf(bw, ".ilb %s\n", strings.Join(cv.InNames, " "))
	}
	if cv.OutNames != nil {
		fmt.Fprintf(bw, ".ob %s\n", strings.Join(cv.OutNames, " "))
	}
	fmt.Fprintf(bw, ".p %d\n", len(cv.Cubes))
	for _, cb := range cv.Cubes {
		for _, t := range cb.In {
			bw.WriteString(t.String())
		}
		bw.WriteByte(' ')
		for _, b := range cb.Out {
			if b {
				bw.WriteByte('1')
			} else {
				bw.WriteByte('0')
			}
		}
		bw.WriteByte('\n')
	}
	bw.WriteString(".e\n")
	return bw.Flush()
}
