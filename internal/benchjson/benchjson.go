// Package benchjson is the one schema for the benchmark JSON artifacts
// (BENCH_enumerate.json, BENCH_identify.json). The two emitters in
// bench_test.go used to carry private copies of their row structs and
// encoder plumbing; a record that two tools must agree on belongs in one
// place, versioned, with a reader that rejects what it does not
// recognize — so a dashboard reading last month's file fails loudly, not
// by misreading fields.
package benchjson

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Schema identifies the envelope format; bump on incompatible change.
const Schema = "rdfault-bench/v1"

// Envelope wraps every benchmark artifact: a schema tag, the row kind,
// and the rows themselves (deferred so Read can check the header before
// committing to a row type).
type Envelope struct {
	Schema string          `json:"schema"`
	Kind   string          `json:"kind"`
	Rows   json.RawMessage `json:"rows"`
}

// The row kinds.
const (
	KindEnumerate = "enumerate-workers"
	KindIdentify  = "identify-cached"
)

// EnumerateRow is one worker count's measurement from
// BenchmarkEnumerateWorkers.
type EnumerateRow struct {
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"ns_per_op"`
	PathsPerSec float64 `json:"paths_per_sec"`
	Speedup     float64 `json:"speedup_vs_serial"`
	Selected    int64   `json:"selected"`
	RD          string  `json:"rd"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
}

// IdentifyCounters is the scheduling-independent counter triple of one
// full identification pipeline (FUS, Heuristic 1, Heuristic 2).
type IdentifyCounters struct {
	Selected [3]int64  `json:"selected"`
	RD       [3]string `json:"rd"`
	Segments [3]int64  `json:"segments"`
}

// IdentifyRow is one circuit's cached-vs-uncached measurement from
// BenchmarkIdentifyCached.
type IdentifyRow struct {
	Circuit        string           `json:"circuit"`
	UncachedNsOp   int64            `json:"uncached_ns_per_op"`
	CachedNsOp     int64            `json:"cached_ns_per_op"`
	CachedColdNs   int64            `json:"cached_cold_first_op_ns"`
	Speedup        float64          `json:"speedup"`
	UncachedAllocs uint64           `json:"uncached_allocs_per_op"`
	CachedAllocs   uint64           `json:"cached_allocs_per_op"`
	UncachedBytes  uint64           `json:"uncached_bytes_per_op"`
	CachedBytes    uint64           `json:"cached_bytes_per_op"`
	Counters       IdentifyCounters `json:"counters"`
}

// Encode writes rows under the versioned envelope.
func Encode(w io.Writer, kind string, rows any) error {
	raw, err := json.Marshal(rows)
	if err != nil {
		return fmt.Errorf("benchjson: %v", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Envelope{Schema: Schema, Kind: kind, Rows: raw})
}

// Decode checks the envelope's schema and kind, then unmarshals the rows
// into dst (a pointer to a row slice).
func Decode(r io.Reader, kind string, dst any) error {
	var env Envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("benchjson: %v", err)
	}
	if env.Schema != Schema {
		return fmt.Errorf("benchjson: schema %q, want %q", env.Schema, Schema)
	}
	if env.Kind != kind {
		return fmt.Errorf("benchjson: kind %q, want %q", env.Kind, kind)
	}
	if err := json.Unmarshal(env.Rows, dst); err != nil {
		return fmt.Errorf("benchjson: rows: %v", err)
	}
	return nil
}

// WriteFile writes rows to path under the envelope.
func WriteFile(path, kind string, rows any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, kind, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads an artifact written by WriteFile.
func ReadFile(path, kind string, dst any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Decode(f, kind, dst)
}
