// Package benchjson is the one schema for the benchmark JSON artifacts
// (BENCH_enumerate.json, BENCH_identify.json). The two emitters in
// bench_test.go used to carry private copies of their row structs and
// encoder plumbing; a record that two tools must agree on belongs in one
// place, versioned, with a reader that rejects what it does not
// recognize — so a dashboard reading last month's file fails loudly, not
// by misreading fields.
package benchjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Schema versions. Encode always writes the current Schema; Decode
// accepts every version listed here plus the pre-envelope legacy format
// (a bare rows array, as committed baselines from before this package
// existed still use) so dashboards and the perf-regression gate can read
// old artifacts. v2 added the paths_per_sec headline and the hot-loop
// allocation count to identify rows.
const (
	SchemaV1 = "rdfault-bench/v1"
	SchemaV2 = "rdfault-bench/v2"
	Schema   = SchemaV2
)

// Envelope wraps every benchmark artifact: a schema tag, the row kind,
// and the rows themselves (deferred so Read can check the header before
// committing to a row type).
type Envelope struct {
	Schema string          `json:"schema"`
	Kind   string          `json:"kind"`
	Rows   json.RawMessage `json:"rows"`
}

// The row kinds.
const (
	KindEnumerate = "enumerate-workers"
	KindIdentify  = "identify-cached"
)

// EnumerateRow is one worker count's measurement from
// BenchmarkEnumerateWorkers.
type EnumerateRow struct {
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"ns_per_op"`
	PathsPerSec float64 `json:"paths_per_sec"`
	Speedup     float64 `json:"speedup_vs_serial"`
	Selected    int64   `json:"selected"`
	RD          string  `json:"rd"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
}

// IdentifyCounters is the scheduling-independent counter triple of one
// full identification pipeline (FUS, Heuristic 1, Heuristic 2).
type IdentifyCounters struct {
	Selected [3]int64  `json:"selected"`
	RD       [3]string `json:"rd"`
	Segments [3]int64  `json:"segments"`
}

// IdentifyRow is one circuit's cached-vs-uncached measurement from
// BenchmarkIdentifyCached. PathsPerSec and HotLoopAllocs are v2 fields
// (absent, i.e. zero, in v1 and legacy artifacts): the headline
// logical-paths-per-second rate of the cached pipeline (|LP(C)| divided
// by warm per-op time), and the allocations of one warm enumeration
// pass — the flat engine's assign/backtrack path contributes zero, so
// this counts only per-run envelope work (reports, counters).
type IdentifyRow struct {
	Circuit        string           `json:"circuit"`
	UncachedNsOp   int64            `json:"uncached_ns_per_op"`
	CachedNsOp     int64            `json:"cached_ns_per_op"`
	CachedColdNs   int64            `json:"cached_cold_first_op_ns"`
	Speedup        float64          `json:"speedup"`
	PathsPerSec    float64          `json:"paths_per_sec,omitempty"`
	HotLoopAllocs  uint64           `json:"hot_loop_allocs"`
	UncachedAllocs uint64           `json:"uncached_allocs_per_op"`
	CachedAllocs   uint64           `json:"cached_allocs_per_op"`
	UncachedBytes  uint64           `json:"uncached_bytes_per_op"`
	CachedBytes    uint64           `json:"cached_bytes_per_op"`
	Counters       IdentifyCounters `json:"counters"`
}

// Encode writes rows under the versioned envelope.
func Encode(w io.Writer, kind string, rows any) error {
	raw, err := json.Marshal(rows)
	if err != nil {
		return fmt.Errorf("benchjson: %v", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Envelope{Schema: Schema, Kind: kind, Rows: raw})
}

// Decode checks the envelope's schema and kind, then unmarshals the rows
// into dst (a pointer to a row slice). Every known schema version is
// accepted. A document that is a bare JSON array is the pre-envelope
// legacy format: it carries no schema or kind header to verify, so the
// rows are unmarshaled directly — the caller's row type is the only
// check (committed baselines written before this package existed are in
// this form, and the perf-regression gate must still read them).
func Decode(r io.Reader, kind string, dst any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("benchjson: %v", err)
	}
	if t := bytes.TrimLeft(data, " \t\r\n"); len(t) > 0 && t[0] == '[' {
		if err := json.Unmarshal(t, dst); err != nil {
			return fmt.Errorf("benchjson: legacy rows: %v", err)
		}
		return nil
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("benchjson: %v", err)
	}
	switch env.Schema {
	case SchemaV2, SchemaV1:
	default:
		return fmt.Errorf("benchjson: schema %q, want %q or %q", env.Schema, SchemaV2, SchemaV1)
	}
	if env.Kind != kind {
		return fmt.Errorf("benchjson: kind %q, want %q", env.Kind, kind)
	}
	if err := json.Unmarshal(env.Rows, dst); err != nil {
		return fmt.Errorf("benchjson: rows: %v", err)
	}
	return nil
}

// WriteFile writes rows to path under the envelope.
func WriteFile(path, kind string, rows any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, kind, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads an artifact written by WriteFile.
func ReadFile(path, kind string, dst any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Decode(f, kind, dst)
}
