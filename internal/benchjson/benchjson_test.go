package benchjson

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleEnumerate() []EnumerateRow {
	return []EnumerateRow{
		{Workers: 1, NsPerOp: 1000, PathsPerSec: 1e6, Speedup: 1, Selected: 42, RD: "17", GOMAXPROCS: 8, NumCPU: 8},
		{Workers: 4, NsPerOp: 300, PathsPerSec: 3.3e6, Speedup: 3.33, Selected: 42, RD: "17", GOMAXPROCS: 8, NumCPU: 8},
	}
}

func sampleIdentify() []IdentifyRow {
	return []IdentifyRow{{
		Circuit: "c432", UncachedNsOp: 900, CachedNsOp: 300, CachedColdNs: 1200, Speedup: 3,
		PathsPerSec: 2.5e7, HotLoopAllocs: 0,
		UncachedAllocs: 50, CachedAllocs: 10, UncachedBytes: 4096, CachedBytes: 512,
		Counters: IdentifyCounters{
			Selected: [3]int64{10, 8, 7},
			RD:       [3]string{"1", "3", "4"},
			Segments: [3]int64{100, 90, 80},
		},
	}}
}

// TestRoundTrip: both row kinds survive the envelope bit-identically,
// through the stream and the file API.
func TestRoundTrip(t *testing.T) {
	t.Run("enumerate", func(t *testing.T) {
		in := sampleEnumerate()
		var buf bytes.Buffer
		if err := Encode(&buf, KindEnumerate, in); err != nil {
			t.Fatal(err)
		}
		var out []EnumerateRow
		if err := Decode(&buf, KindEnumerate, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mangled rows:\nin  %+v\nout %+v", in, out)
		}
	})
	t.Run("identify-file", func(t *testing.T) {
		in := sampleIdentify()
		path := filepath.Join(t.TempDir(), "BENCH_identify.json")
		if err := WriteFile(path, KindIdentify, in); err != nil {
			t.Fatal(err)
		}
		var out []IdentifyRow
		if err := ReadFile(path, KindIdentify, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("file round trip mangled rows:\nin  %+v\nout %+v", in, out)
		}
	})
}

// TestEnvelopeRejection: a reader must refuse wrong schemas and wrong
// kinds instead of silently misreading fields.
func TestEnvelopeRejection(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, KindEnumerate, sampleEnumerate()); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	var rows []EnumerateRow
	if err := Decode(strings.NewReader(good), KindIdentify, &rows); err == nil {
		t.Fatal("decoder accepted the wrong kind")
	}
	bad := strings.Replace(good, Schema, "rdfault-bench/v0", 1)
	if err := Decode(strings.NewReader(bad), KindEnumerate, &rows); err == nil {
		t.Fatal("decoder accepted an unknown schema")
	}
	if err := Decode(strings.NewReader("[1,2,3]"), KindEnumerate, &rows); err == nil {
		t.Fatal("decoder accepted a legacy array whose rows do not match the row type")
	}
}

// TestLegacyAndV1Compatibility: the v2 reader must still parse the two
// older artifact forms in the wild — a bare rows array (the committed
// pre-envelope baselines) and a v1 envelope — with the v2-only fields
// reading as zero.
func TestLegacyAndV1Compatibility(t *testing.T) {
	t.Run("legacy-bare-array", func(t *testing.T) {
		legacy := `[
  {
    "circuit": "c432",
    "uncached_ns_per_op": 10182824,
    "cached_ns_per_op": 4407652,
    "cached_cold_first_op_ns": 8061491,
    "speedup": 2.31,
    "uncached_allocs_per_op": 6178,
    "cached_allocs_per_op": 308,
    "counters": {"selected": [1495, 1390, 1358], "rd": ["3", "5", "9"], "segments": [70, 60, 50]}
  }
]`
		var rows []IdentifyRow
		if err := Decode(strings.NewReader(legacy), KindIdentify, &rows); err != nil {
			t.Fatalf("legacy bare array rejected: %v", err)
		}
		if len(rows) != 1 || rows[0].Circuit != "c432" || rows[0].CachedNsOp != 4407652 {
			t.Fatalf("legacy rows misread: %+v", rows)
		}
		if rows[0].PathsPerSec != 0 || rows[0].HotLoopAllocs != 0 {
			t.Fatalf("v2-only fields must read as zero from legacy rows: %+v", rows[0])
		}
	})
	t.Run("v1-envelope", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Encode(&buf, KindIdentify, sampleIdentify()); err != nil {
			t.Fatal(err)
		}
		v1 := strings.Replace(buf.String(), SchemaV2, SchemaV1, 1)
		var rows []IdentifyRow
		if err := Decode(strings.NewReader(v1), KindIdentify, &rows); err != nil {
			t.Fatalf("v1 envelope rejected: %v", err)
		}
		if !reflect.DeepEqual(rows, sampleIdentify()) {
			t.Fatalf("v1 rows misread:\nin  %+v\nout %+v", sampleIdentify(), rows)
		}
	})
}

// TestEnvelopeHeader: the written artifact leads with the schema tag so
// `head -2` on a BENCH file identifies it.
func TestEnvelopeHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, KindIdentify, sampleIdentify()); err != nil {
		t.Fatal(err)
	}
	head := buf.String()
	if i := strings.Index(head, `"schema"`); i < 0 || i > 20 {
		t.Fatalf("schema tag not at the head of the artifact:\n%s", head[:80])
	}
}
