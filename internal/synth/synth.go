// Package synth turns two-level covers into multi-level circuits — the
// stand-in for the SIS script.rugged flow the paper uses to synthesize
// the MCNC benchmarks for Table III.
//
// The pipeline is deliberately classical: build the AND-OR two-level
// form, structurally hash identical gates, greedily extract common
// two-literal divisors (a fast_extract-style single-cube extraction),
// and decompose wide gates into balanced two-input trees. The result is
// a multi-level network with internal fanout and reconvergence — the
// structural features RD identification feeds on. Functional equivalence
// with the source cover is testable via pla.Cover.Eval.
package synth

import (
	"fmt"
	"sort"

	"rdfault/internal/circuit"
	"rdfault/internal/pla"
)

// node is an intermediate netlist vertex.
type node struct {
	typ   circuit.GateType // Input, Not, And, Or
	fanin []int
	name  string
}

// network is a mutable DAG used during synthesis.
type network struct {
	nodes   []node
	outputs []int // node ids
	outName []string
	hash    map[string]int
}

func (n *network) add(typ circuit.GateType, name string, fanin ...int) int {
	key := hashKey(typ, fanin)
	if id, ok := n.hash[key]; ok && typ != circuit.Input {
		return id
	}
	id := len(n.nodes)
	n.nodes = append(n.nodes, node{typ: typ, fanin: append([]int(nil), fanin...), name: name})
	if typ != circuit.Input {
		n.hash[key] = id
	}
	return id
}

func hashKey(typ circuit.GateType, fanin []int) string {
	s := append([]int(nil), fanin...)
	if typ == circuit.And || typ == circuit.Or {
		sort.Ints(s)
	}
	return fmt.Sprint(typ, s)
}

// Options tunes Synthesize.
type Options struct {
	// MaxArity is the gate width after decomposition. 0 means the default
	// of 2; a negative value keeps wide gates undecomposed.
	MaxArity int
	// NoExtract disables common-divisor extraction (ablation: pure
	// two-level + decomposition).
	NoExtract bool
}

// Synthesize compiles the cover into a multi-level circuit of simple
// gates.
func Synthesize(cv *pla.Cover, opt Options) (*circuit.Circuit, error) {
	if err := cv.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxArity == 0 {
		opt.MaxArity = 2
	}
	if opt.MaxArity == 1 {
		return nil, fmt.Errorf("synth: MaxArity must be 0 or >= 2")
	}
	net := &network{hash: map[string]int{}}

	// Inputs and their inverters (created lazily).
	ins := make([]int, cv.NumIn)
	for i := range ins {
		ins[i] = net.add(circuit.Input, cv.InName(i))
	}
	invOf := map[int]int{}
	inv := func(id int) int {
		if v, ok := invOf[id]; ok {
			return v
		}
		v := net.add(circuit.Not, "", id)
		invOf[id] = v
		return v
	}

	// Cube AND gates, shared across outputs.
	cubeGate := make([]int, len(cv.Cubes))
	for ci, cb := range cv.Cubes {
		var lits []int
		for i, t := range cb.In {
			switch t {
			case pla.T0:
				lits = append(lits, inv(ins[i]))
			case pla.T1:
				lits = append(lits, ins[i])
			}
		}
		switch len(lits) {
		case 0:
			return nil, fmt.Errorf("synth %s: cube %d is constant true (full don't-care input part)", cv.Name, ci)
		case 1:
			cubeGate[ci] = lits[0]
		default:
			cubeGate[ci] = net.add(circuit.And, "", lits...)
		}
	}

	// Output OR gates.
	for o := 0; o < cv.NumOut; o++ {
		var terms []int
		seen := map[int]bool{}
		for ci, cb := range cv.Cubes {
			if cb.Out[o] && !seen[cubeGate[ci]] {
				seen[cubeGate[ci]] = true
				terms = append(terms, cubeGate[ci])
			}
		}
		if len(terms) == 0 {
			return nil, fmt.Errorf("synth %s: output %s has an empty ON-set (constant 0)", cv.Name, cv.OutName(o))
		}
		root := terms[0]
		if len(terms) > 1 {
			root = net.add(circuit.Or, "", terms...)
		}
		net.outputs = append(net.outputs, root)
		net.outName = append(net.outName, cv.OutName(o))
	}

	if !opt.NoExtract {
		net.extractDivisors()
	}
	if opt.MaxArity > 0 {
		net.decompose(opt.MaxArity)
	}
	return net.emit(cv.Name)
}

// extractDivisors repeatedly finds the literal pair occurring in the most
// AND gates (or OR gates) and factors it into a fresh 2-input gate. This
// creates shared internal nodes — multi-level structure.
func (n *network) extractDivisors() {
	for {
		type pair struct{ a, b int }
		best := pair{-1, -1}
		bestCount := 1
		var bestTyp circuit.GateType
		count := map[circuit.GateType]map[pair]int{
			circuit.And: {},
			circuit.Or:  {},
		}
		for _, nd := range n.nodes {
			if nd.typ != circuit.And && nd.typ != circuit.Or {
				continue
			}
			if len(nd.fanin) < 3 {
				continue // extracting from 2-input gates only renames them
			}
			f := append([]int(nil), nd.fanin...)
			sort.Ints(f)
			for i := 0; i < len(f); i++ {
				for j := i + 1; j < len(f); j++ {
					p := pair{f[i], f[j]}
					count[nd.typ][p]++
					if count[nd.typ][p] > bestCount {
						bestCount = count[nd.typ][p]
						best = p
						bestTyp = nd.typ
					}
				}
			}
		}
		if best.a < 0 {
			return
		}
		div := n.add(bestTyp, "", best.a, best.b)
		for id := range n.nodes {
			nd := &n.nodes[id]
			if nd.typ != bestTyp || id == div || len(nd.fanin) < 3 {
				continue
			}
			ia, ib := -1, -1
			for k, f := range nd.fanin {
				if f == best.a && ia < 0 {
					ia = k
				} else if f == best.b && ib < 0 {
					ib = k
				}
			}
			if ia < 0 || ib < 0 {
				continue
			}
			var nf []int
			for k, f := range nd.fanin {
				if k != ia && k != ib {
					nf = append(nf, f)
				}
			}
			nd.fanin = append(nf, div)
		}
	}
}

// decompose splits gates wider than maxArity into balanced trees.
func (n *network) decompose(maxArity int) {
	for id := 0; id < len(n.nodes); id++ {
		nd := &n.nodes[id]
		if (nd.typ != circuit.And && nd.typ != circuit.Or) || len(nd.fanin) <= maxArity {
			continue
		}
		// Split children into chunks, building subtree gates; keep this
		// node as the root over the chunk gates.
		fanin := nd.fanin
		for len(fanin) > maxArity {
			var next []int
			for i := 0; i < len(fanin); i += maxArity {
				end := i + maxArity
				if end > len(fanin) {
					end = len(fanin)
				}
				chunk := fanin[i:end]
				if len(chunk) == 1 {
					next = append(next, chunk[0])
				} else {
					next = append(next, n.add(n.nodes[id].typ, "", chunk...))
				}
			}
			fanin = next
		}
		n.nodes[id].fanin = fanin
	}
}

// emit converts the network into an immutable circuit, dropping
// unreachable nodes.
func (n *network) emit(name string) (*circuit.Circuit, error) {
	b := circuit.NewBuilder(name)
	mapped := make([]circuit.GateID, len(n.nodes))
	for i := range mapped {
		mapped[i] = circuit.None
	}
	// Reachability from outputs; inputs always emitted (PLA semantics keep
	// declared inputs, even unused ones).
	reach := make([]bool, len(n.nodes))
	var markReach func(int)
	markReach = func(id int) {
		if reach[id] {
			return
		}
		reach[id] = true
		for _, f := range n.nodes[id].fanin {
			markReach(f)
		}
	}
	for _, o := range n.outputs {
		markReach(o)
	}
	var emitNode func(id int) circuit.GateID
	emitNode = func(id int) circuit.GateID {
		if mapped[id] != circuit.None {
			return mapped[id]
		}
		nd := &n.nodes[id]
		fanin := make([]circuit.GateID, len(nd.fanin))
		for i, f := range nd.fanin {
			fanin[i] = emitNode(f)
		}
		var g circuit.GateID
		switch nd.typ {
		case circuit.Input:
			g = b.Input(nd.name)
		case circuit.Not:
			g = b.Gate(circuit.Not, nd.name, fanin[0])
		default:
			g = b.Gate(nd.typ, nd.name, fanin...)
		}
		mapped[id] = g
		return g
	}
	// Emit inputs first so Inputs() order matches the cover.
	for id := range n.nodes {
		if n.nodes[id].typ == circuit.Input {
			emitNode(id)
		}
	}
	for id := range n.nodes {
		if reach[id] {
			emitNode(id)
		}
	}
	usedAsPO := map[string]int{}
	for i, o := range n.outputs {
		nm := n.outName[i] + "$po"
		if k := usedAsPO[nm]; k > 0 {
			nm = fmt.Sprintf("%s%d", nm, k)
		}
		usedAsPO[n.outName[i]+"$po"]++
		b.Output(nm, mapped[o])
	}
	return b.Build()
}
