package synth

import (
	"fmt"
	"math/rand"

	"rdfault/internal/circuit"
)

// Relabel returns a structurally isomorphic copy of c: every gate is
// renamed and the internal gates are re-declared in a different (still
// topologically valid) order drawn from the seed. Primary inputs and
// outputs keep their declaration order, and every gate's fanin pin order
// is preserved, so an input sort transports through the returned mapping
// unchanged — which makes this the "gate relabeling" metamorphic rewrite
// of the differential harness: RD identification must be invariant under
// it.
//
// The second return value maps each old GateID to its counterpart in the
// new circuit.
func Relabel(c *circuit.Circuit, seed int64) (*circuit.Circuit, []circuit.GateID, error) {
	rng := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder(c.Name() + "_relabel")
	perm := make([]circuit.GateID, c.NumGates())
	for i := range perm {
		perm[i] = circuit.None
	}

	for i, pi := range c.Inputs() {
		perm[pi] = b.Input(fmt.Sprintf("ri%d", i))
	}

	// Kahn's algorithm over the internal gates with a seeded random pick
	// from the ready set: any run is a valid declaration order, and the
	// seed decides which.
	missing := make([]int, c.NumGates())
	var ready []circuit.GateID
	var internal int
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		switch c.Type(g) {
		case circuit.Input, circuit.Output:
			continue
		}
		internal++
		n := 0
		for _, f := range c.Fanin(g) {
			if c.Type(f) != circuit.Input {
				n++
			}
		}
		missing[g] = n
		if n == 0 {
			ready = append(ready, g)
		}
	}
	done := 0
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		g := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		fanin := make([]circuit.GateID, len(c.Fanin(g)))
		for pin, f := range c.Fanin(g) {
			fanin[pin] = perm[f]
		}
		perm[g] = b.Gate(c.Type(g), fmt.Sprintf("rg%d", done), fanin...)
		done++
		for _, e := range c.Fanout(g) {
			to := e.To
			if c.Type(to) == circuit.Output {
				continue
			}
			// A multi-pin consumer appears once per connected pin; count
			// each edge exactly once.
			missing[to]--
			if missing[to] == 0 {
				ready = append(ready, to)
			}
		}
	}
	if done != internal {
		return nil, nil, fmt.Errorf("synth: relabel scheduled %d of %d gates", done, internal)
	}

	for i, po := range c.Outputs() {
		perm[po] = b.Output(fmt.Sprintf("ro%d", i), perm[c.Fanin(po)[0]])
	}
	out, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("synth: relabel: %v", err)
	}
	return out, perm, nil
}

// InsertBuffers returns a copy of c with a fanout-free buffer spliced
// into a seeded-random fraction of its leads. Buffers neither invert nor
// choose between inputs, so the logical path set bijects onto the
// original's and RD identification must be invariant — the second
// metamorphic rewrite of the differential harness.
//
// The returned mapping covers the original gates (buffers are new and
// have no preimage). frac is clamped to [0,1]; 0 inserts nothing.
func InsertBuffers(c *circuit.Circuit, seed int64, frac float64) (*circuit.Circuit, []circuit.GateID, error) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder(c.Name() + "_buf")
	gmap := make([]circuit.GateID, c.NumGates())
	bufs := 0
	// GateIDs are assigned in declaration order, which the builder has
	// already verified to be topological: a single increasing scan sees
	// every fanin before its consumer.
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		gate := c.Gate(g)
		switch gate.Type {
		case circuit.Input:
			gmap[g] = b.Input("b_" + gate.Name)
		case circuit.Output:
			gmap[g] = b.Output("b_"+gate.Name, gmap[gate.Fanin[0]])
		default:
			fanin := make([]circuit.GateID, len(gate.Fanin))
			for pin, f := range gate.Fanin {
				src := gmap[f]
				if rng.Float64() < frac {
					src = b.Gate(circuit.Buf, fmt.Sprintf("bb%d", bufs), src)
					bufs++
				}
				fanin[pin] = src
			}
			gmap[g] = b.Gate(gate.Type, "b_"+gate.Name, fanin...)
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("synth: insert buffers: %v", err)
	}
	return out, gmap, nil
}
