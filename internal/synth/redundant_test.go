package synth

import (
	"testing"

	"rdfault/internal/bdd"
	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/gen"
)

func TestRemoveRedundantKnownCase(t *testing.T) {
	// f = a | (b & (b|c)) = a | b: the o gate's c input is redundant.
	c := gen.PaperExample()
	swept, removed, err := RemoveRedundant(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("no redundancy found in the paper example")
	}
	eq, err := bdd.Equivalent(c, swept)
	if err != nil || !eq {
		t.Fatalf("sweep changed function (eq=%v err=%v)", eq, err)
	}
	if swept.NumGates() >= c.NumGates() {
		t.Fatalf("sweep did not shrink the netlist (%d -> %d)", c.NumGates(), swept.NumGates())
	}
}

func TestRemoveRedundantPreservesFunction(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cv := gen.RandomPLA("r", gen.PLAOptions{Inputs: 7, Outputs: 3, Cubes: 14, Redundant: 10}, seed)
		c, err := Synthesize(cv, Options{})
		if err != nil {
			t.Fatal(err)
		}
		swept, removed, err := RemoveRedundant(c, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		eq, err := bdd.Equivalent(c, swept)
		if err != nil || !eq {
			t.Fatalf("seed %d: function changed (removed %d)", seed, removed)
		}
		// Exhaustive cross-check too.
		n := len(c.Inputs())
		for v := 0; v < 1<<n; v++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = v&(1<<i) != 0
			}
			a := c.OutputsOf(c.EvalBool(in))
			b := swept.OutputsOf(swept.EvalBool(in))
			for o := range a {
				if a[o] != b[o] {
					t.Fatalf("seed %d: differs at v=%d", seed, v)
				}
			}
		}
	}
}

func TestRemoveRedundantIdempotent(t *testing.T) {
	cv := gen.RandomPLA("r", gen.PLAOptions{Inputs: 6, Outputs: 3, Cubes: 12, Redundant: 8}, 5)
	c, err := Synthesize(cv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	swept, _, err := RemoveRedundant(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	again, removed2, err := RemoveRedundant(swept, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed2 != 0 {
		t.Fatalf("second sweep removed %d more gates", removed2)
	}
	if again.NumGates() != swept.NumGates() {
		t.Fatal("second sweep changed the netlist")
	}
}

// TestSweepReducesRD is the ablation: functional redundancy is the main
// source of robust dependent paths, so sweeping it away must not increase
// — and typically slashes — the RD percentage.
func TestSweepReducesRD(t *testing.T) {
	better, total := 0, 0
	for seed := int64(1); seed <= 6; seed++ {
		cv := gen.RandomPLA("r", gen.PLAOptions{Inputs: 8, Outputs: 4, Cubes: 18, Redundant: 14}, seed)
		c, err := Synthesize(cv, Options{})
		if err != nil {
			t.Fatal(err)
		}
		swept, removed, err := RemoveRedundant(c, 0)
		if err != nil {
			t.Fatal(err)
		}
		if removed == 0 {
			continue
		}
		before, err := core.Identify(c, core.Heuristic2, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		after, err := core.Identify(swept, core.Heuristic2, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		total++
		if after.RDPercent() < before.RDPercent() {
			better++
		}
		t.Logf("seed %d: removed %d gates, RD %.2f%% -> %.2f%%",
			seed, removed, before.RDPercent(), after.RDPercent())
	}
	if total > 0 && better == 0 {
		t.Fatal("sweep never reduced RD percentage")
	}
}

func TestRemoveRedundantRejectsWide(t *testing.T) {
	c := gen.RandomCircuit("w", gen.RandomOptions{Inputs: 30, Gates: 40, Outputs: 2}, 1)
	if _, _, err := RemoveRedundant(c, 24); err == nil {
		t.Fatal("expected error for 30 inputs")
	}
}

func TestIrredundantUntouched(t *testing.T) {
	// A fanout-free NAND tree over distinct inputs is irredundant.
	b := circuit.NewBuilder("ff")
	a := b.Input("a")
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	g1 := b.Gate(circuit.Nand, "g1", a, x)
	g2 := b.Gate(circuit.Nand, "g2", y, z)
	b.Output("po", b.Gate(circuit.Nand, "g3", g1, g2))
	c := b.MustBuild()
	swept, removed, err := RemoveRedundant(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 || swept.NumGates() != c.NumGates() {
		t.Fatalf("irredundant circuit modified (removed %d)", removed)
	}
}
