package synth

import (
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/sim"
)

func rewriteCircuit(seed int64) *circuit.Circuit {
	return gen.RandomCircuit("rw", gen.RandomOptions{Inputs: 6, Gates: 24, Outputs: 3, MaxArity: 4}, seed)
}

// sameFunction exhaustively compares the two circuits' input-output
// behavior (inputs and outputs matched by declaration order).
func sameFunction(t *testing.T, a, b *circuit.Circuit) {
	t.Helper()
	n := len(a.Inputs())
	if len(b.Inputs()) != n || len(b.Outputs()) != len(a.Outputs()) {
		t.Fatalf("interface changed: %d/%d inputs, %d/%d outputs",
			n, len(b.Inputs()), len(a.Outputs()), len(b.Outputs()))
	}
	words := make([]uint64, n)
	for v := 0; v < 1<<n; v++ {
		for i := range words {
			if v>>i&1 == 1 {
				words[i] = ^uint64(0)
			} else {
				words[i] = 0
			}
		}
		va, vb := sim.EvalParallel(a, words), sim.EvalParallel(b, words)
		for i, po := range a.Outputs() {
			if va[po]&1 != vb[b.Outputs()[i]]&1 {
				t.Fatalf("vector %b: output %d differs", v, i)
			}
		}
	}
}

// TestRelabel: the relabeled circuit is a true isomorph — same function,
// same per-gate type/arity through the mapping, different declaration
// order for at least one seed pair, and the mapping covers every gate.
func TestRelabel(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c := rewriteCircuit(seed)
		r, perm, err := Relabel(c, seed)
		if err != nil {
			t.Fatal(err)
		}
		sameFunction(t, c, r)
		if r.NumGates() != c.NumGates() {
			t.Fatalf("seed %d: gate count %d -> %d", seed, c.NumGates(), r.NumGates())
		}
		for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
			ng := perm[g]
			if ng == circuit.None {
				t.Fatalf("seed %d: gate %d unmapped", seed, g)
			}
			if c.Type(g) != r.Type(ng) || len(c.Fanin(g)) != len(r.Fanin(ng)) {
				t.Fatalf("seed %d: gate %d changed type/arity under relabeling", seed, g)
			}
			// Pin order is preserved gate by gate — the property that lets
			// an input sort transport through the mapping unchanged.
			for pin, f := range c.Fanin(g) {
				if r.Fanin(ng)[pin] != perm[f] {
					t.Fatalf("seed %d: gate %d pin %d rewired", seed, g, pin)
				}
			}
		}
	}
	// The relabeling must actually shuffle something, or the metamorphic
	// check compares a circuit with itself.
	c := rewriteCircuit(1)
	shuffled := false
	for seed := int64(1); seed <= 8 && !shuffled; seed++ {
		r, perm, err := Relabel(c, seed)
		if err != nil {
			t.Fatal(err)
		}
		for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
			if perm[g] != g {
				shuffled = true
				break
			}
		}
		_ = r
	}
	if !shuffled {
		t.Fatal("no seed produced a nontrivial relabeling")
	}
}

// TestInsertBuffers: buffers change structure but not function; the path
// set bijects (same logical path count through each original gate
// chain), and frac=0 is the identity up to renaming.
func TestInsertBuffers(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c := rewriteCircuit(seed)
		b, gmap, err := InsertBuffers(c, seed, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		sameFunction(t, c, b)
		if b.NumGates() <= c.NumGates() {
			t.Fatalf("seed %d: no buffer inserted (%d -> %d gates); raise frac", seed, c.NumGates(), b.NumGates())
		}
		inserted := 0
		for g := circuit.GateID(0); int(g) < b.NumGates(); g++ {
			if b.Type(g) == circuit.Buf {
				if n := len(b.Fanout(g)); n != 1 {
					t.Fatalf("seed %d: inserted buffer with fanout %d, want 1 (fanout-free)", seed, n)
				}
				inserted++
			}
		}
		if inserted != b.NumGates()-c.NumGates() {
			t.Fatalf("seed %d: %d new gates but %d buffers", seed, b.NumGates()-c.NumGates(), inserted)
		}
		for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
			if gmap[g] == circuit.None {
				t.Fatalf("seed %d: original gate %d unmapped", seed, g)
			}
			if c.Type(g) != b.Type(gmap[g]) {
				t.Fatalf("seed %d: gate %d changed type", seed, g)
			}
		}
	}

	c := rewriteCircuit(2)
	id, _, err := InsertBuffers(c, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if id.NumGates() != c.NumGates() {
		t.Fatalf("frac=0 inserted %d gates", id.NumGates()-c.NumGates())
	}
	sameFunction(t, c, id)
}
