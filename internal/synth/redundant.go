package synth

import (
	"fmt"

	"rdfault/internal/bdd"
	"rdfault/internal/circuit"
)

// RemoveRedundant returns a functionally equivalent circuit in which
// internal gates proven functionally redundant have been folded away: a
// gate is redundant-to-v when forcing its output to the constant v leaves
// every primary output function unchanged (verified exactly with BDDs).
// The sweep iterates to a fixpoint; candidates whose folding would turn a
// primary output constant are skipped (the netlist model has no constant
// drivers).
//
// Redundancy of this kind is the dominant source of robust dependent
// paths, so the sweep doubles as an ablation: RD percentages drop
// markedly on swept circuits.
func RemoveRedundant(c *circuit.Circuit, maxInputs int) (*circuit.Circuit, int, error) {
	if maxInputs <= 0 {
		maxInputs = 24
	}
	if len(c.Inputs()) > maxInputs {
		return nil, 0, fmt.Errorf("synth: RemoveRedundant on %d inputs (max %d)", len(c.Inputs()), maxInputs)
	}
	removed := 0
	cur := c
	for {
		g, v, ok := findRedundant(cur)
		if !ok {
			return cur, removed, nil
		}
		next, err := foldConstant(cur, g, v)
		if err != nil {
			return nil, removed, err
		}
		cur = next
		removed++
	}
}

// findRedundant searches for an internal gate whose output can be forced
// constant without changing any PO, and whose folding keeps all POs
// non-constant.
func findRedundant(c *circuit.Circuit) (circuit.GateID, bool, bool) {
	m := bdd.New(len(c.Inputs()))
	ref := bdd.FromCircuitOrdered(m, c, bdd.OrderForCircuit(c))
	for _, g := range c.TopoOrder() {
		switch c.Type(g) {
		case circuit.Input, circuit.Output:
			continue
		}
		for _, v := range [2]bool{false, true} {
			if redundantTo(m, c, ref, g, v) && !constifiesPO(c, g, v) {
				return g, v, true
			}
		}
	}
	return circuit.None, false, false
}

// redundantTo rebuilds the functions downstream of g with g forced to v
// and compares every PO.
func redundantTo(m *bdd.Manager, c *circuit.Circuit, ref []bdd.Ref, g circuit.GateID, v bool) bool {
	faulty := make([]bdd.Ref, len(ref))
	copy(faulty, ref)
	if v {
		faulty[g] = bdd.True
	} else {
		faulty[g] = bdd.False
	}
	// Recompute the transitive fanout of g in topological order.
	inCone := make([]bool, c.NumGates())
	inCone[g] = true
	for _, h := range c.TopoOrder() {
		if h == g || c.Type(h) == circuit.Input {
			continue
		}
		affected := false
		for _, f := range c.Fanin(h) {
			if inCone[f] {
				affected = true
				break
			}
		}
		if !affected {
			continue
		}
		inCone[h] = true
		faulty[h] = rebuildGate(m, c, faulty, h)
	}
	for _, po := range c.Outputs() {
		if faulty[po] != ref[po] {
			return false
		}
	}
	return true
}

func rebuildGate(m *bdd.Manager, c *circuit.Circuit, ref []bdd.Ref, g circuit.GateID) bdd.Ref {
	gate := c.Gate(g)
	switch gate.Type {
	case circuit.Output, circuit.Buf:
		return ref[gate.Fanin[0]]
	case circuit.Not:
		return m.Not(ref[gate.Fanin[0]])
	case circuit.And, circuit.Nand:
		r := bdd.True
		for _, f := range gate.Fanin {
			r = m.And(r, ref[f])
		}
		if gate.Type == circuit.Nand {
			r = m.Not(r)
		}
		return r
	case circuit.Or, circuit.Nor:
		r := bdd.False
		for _, f := range gate.Fanin {
			r = m.Or(r, ref[f])
		}
		if gate.Type == circuit.Nor {
			r = m.Not(r)
		}
		return r
	}
	panic("synth: rebuildGate on " + gate.Type.String())
}

// constifiesPO simulates constant folding of gate g := v and reports
// whether some PO driver would become constant.
func constifiesPO(c *circuit.Circuit, g circuit.GateID, v bool) bool {
	_, constVal, _, err := foldPlan(c, g, v)
	if err != nil {
		return true
	}
	for _, po := range c.Outputs() {
		if _, isConst := constVal[c.Fanin(po)[0]]; isConst {
			return true
		}
	}
	return false
}

// foldPlan computes, for every gate, whether folding g := v makes it a
// constant (and what it folds to) or an alias of a single surviving
// fanin.
func foldPlan(c *circuit.Circuit, g circuit.GateID, v bool) ([]circuit.GateID, map[circuit.GateID]bool, map[circuit.GateID]circuit.GateID, error) {
	constVal := map[circuit.GateID]bool{g: v}
	// alias[h] = the gate h degenerates to (single surviving fanin).
	alias := map[circuit.GateID]circuit.GateID{}
	resolve := func(f circuit.GateID) circuit.GateID {
		for {
			a, ok := alias[f]
			if !ok {
				return f
			}
			f = a
		}
	}
	for _, h := range c.TopoOrder() {
		if h == g {
			continue
		}
		gate := c.Gate(h)
		switch gate.Type {
		case circuit.Input:
			continue
		case circuit.Output, circuit.Buf:
			f := resolve(gate.Fanin[0])
			if cv, ok := constVal[f]; ok {
				constVal[h] = cv
			} else if gate.Type == circuit.Buf {
				alias[h] = f
			}
		case circuit.Not:
			f := resolve(gate.Fanin[0])
			if cv, ok := constVal[f]; ok {
				constVal[h] = !cv
			}
		default:
			ctrl, _ := gate.Type.Controlling()
			outWhenCtrl := ctrl != gate.Type.Inverting()
			anyCtrl := false
			var live []circuit.GateID
			for _, f := range gate.Fanin {
				rf := resolve(f)
				if cv, ok := constVal[rf]; ok {
					if cv == ctrl {
						anyCtrl = true
						break
					}
					continue // non-controlling constant drops out
				}
				live = append(live, rf)
			}
			switch {
			case anyCtrl:
				constVal[h] = outWhenCtrl
			case len(live) == 0:
				constVal[h] = !outWhenCtrl
			case len(live) == 1 && !gate.Type.Inverting():
				alias[h] = live[0]
			}
		}
	}
	return nil, constVal, alias, nil
}

// foldConstant rebuilds c with gate g forced to the constant v and all
// consequences folded away, keeping only logic reachable from the POs.
func foldConstant(c *circuit.Circuit, g circuit.GateID, v bool) (*circuit.Circuit, error) {
	_, constVal, alias, err := foldPlan(c, g, v)
	if err != nil {
		return nil, err
	}
	resolve := func(f circuit.GateID) circuit.GateID {
		for {
			a, ok := alias[f]
			if !ok {
				return f
			}
			f = a
		}
	}
	// Effective fanins of every surviving gate, in old ids.
	type proto struct {
		typ  circuit.GateType
		fans []circuit.GateID
	}
	protos := map[circuit.GateID]proto{}
	for _, h := range c.TopoOrder() {
		gate := c.Gate(h)
		if gate.Type == circuit.Input {
			protos[h] = proto{typ: circuit.Input}
			continue
		}
		if _, isConst := constVal[h]; isConst {
			if gate.Type == circuit.Output {
				return nil, fmt.Errorf("synth: folding would constant-ify PO %q", gate.Name)
			}
			continue
		}
		if _, aliased := alias[h]; aliased {
			continue
		}
		switch gate.Type {
		case circuit.Output, circuit.Buf, circuit.Not:
			f := resolve(gate.Fanin[0])
			if _, isConst := constVal[f]; isConst {
				return nil, fmt.Errorf("synth: %q survived with constant fanin", gate.Name)
			}
			protos[h] = proto{typ: gate.Type, fans: []circuit.GateID{f}}
		default:
			var live []circuit.GateID
			for _, f := range gate.Fanin {
				rf := resolve(f)
				if _, isConst := constVal[rf]; isConst {
					continue
				}
				live = append(live, rf)
			}
			switch {
			case len(live) == 0:
				return nil, fmt.Errorf("synth: gate %q lost all fanins without folding", gate.Name)
			case len(live) == 1:
				t := circuit.Buf
				if gate.Type.Inverting() {
					t = circuit.Not
				}
				protos[h] = proto{typ: t, fans: live}
			default:
				protos[h] = proto{typ: gate.Type, fans: live}
			}
		}
	}
	// Reachability from POs.
	reach := map[circuit.GateID]bool{}
	var mark func(h circuit.GateID)
	mark = func(h circuit.GateID) {
		if reach[h] {
			return
		}
		reach[h] = true
		for _, f := range protos[h].fans {
			mark(f)
		}
	}
	for _, po := range c.Outputs() {
		mark(po)
	}
	// Emit: inputs always, others when reachable, in topo order; Buf
	// protos (except POs) collapse to their source.
	b := circuit.NewBuilder(c.Name())
	newID := make([]circuit.GateID, c.NumGates())
	for i := range newID {
		newID[i] = circuit.None
	}
	for _, pi := range c.Inputs() {
		newID[pi] = b.Input(c.Gate(pi).Name)
	}
	for _, h := range c.TopoOrder() {
		pr, ok := protos[h]
		if !ok || !reach[h] || pr.typ == circuit.Input {
			continue
		}
		fans := make([]circuit.GateID, len(pr.fans))
		for i, f := range pr.fans {
			fans[i] = newID[f]
			if fans[i] == circuit.None {
				return nil, fmt.Errorf("synth: fanin of %q not emitted", c.Gate(h).Name)
			}
		}
		switch pr.typ {
		case circuit.Output:
			newID[h] = b.Output(c.Gate(h).Name, fans[0])
		case circuit.Buf:
			newID[h] = fans[0]
		default:
			newID[h] = b.Gate(pr.typ, c.Gate(h).Name, fans...)
		}
	}
	return b.Build()
}
