package synth

import (
	"strings"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/pla"
)

func mustParse(t *testing.T, src string) *pla.Cover {
	t.Helper()
	cv, err := pla.Parse("t", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return cv
}

func equivalent(t *testing.T, cv *pla.Cover, c *circuit.Circuit) {
	t.Helper()
	if cv.NumIn > 14 {
		t.Fatal("equivalence check limited to 14 inputs")
	}
	in := make([]bool, cv.NumIn)
	for v := 0; v < 1<<cv.NumIn; v++ {
		for i := range in {
			in[i] = v&(1<<i) != 0
		}
		want := cv.Eval(in)
		got := c.OutputsOf(c.EvalBool(in))
		for o := range want {
			if want[o] != got[o] {
				t.Fatalf("synthesis changed function at v=%0*b output %d", cv.NumIn, v, o)
			}
		}
	}
}

func TestSynthesizeSample(t *testing.T) {
	cv := mustParse(t, `
.i 3
.o 2
1-0 10
01- 11
--1 01
111 10
`)
	c, err := Synthesize(cv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, cv, c)
	// All gates at most 2-input after default decomposition.
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		if len(c.Fanin(g)) > 2 {
			t.Errorf("gate %q has %d fanins after MaxArity=2 decomposition",
				c.Gate(g).Name, len(c.Fanin(g)))
		}
	}
}

func TestSynthesizeWideGates(t *testing.T) {
	cv := mustParse(t, `
.i 6
.o 1
111111 1
000000 1
`)
	c, err := Synthesize(cv, Options{MaxArity: -1, NoExtract: true})
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, cv, c)
	// Expect a 6-input AND somewhere.
	wide := false
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		if len(c.Fanin(g)) == 6 {
			wide = true
		}
	}
	if !wide {
		t.Error("negative MaxArity should keep wide gates")
	}
}

func TestSynthesizeRandomEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		cv := gen.RandomPLA("rnd", gen.PLAOptions{Inputs: 6, Outputs: 3, Cubes: 12}, seed)
		for _, opt := range []Options{
			{},
			{MaxArity: 3},
			{NoExtract: true},
			{MaxArity: -1},
		} {
			c, err := Synthesize(cv, opt)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opt, err)
			}
			equivalent(t, cv, c)
		}
	}
}

func TestSynthesizeSharing(t *testing.T) {
	// Cubes sharing literal pairs should produce internal fanout after
	// extraction.
	cv := mustParse(t, `
.i 4
.o 1
1100 1
1101 1
1110 1
`)
	c, err := Synthesize(cv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, cv, c)
	hasFanout := false
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		if c.Type(g) != circuit.Input && len(c.Fanout(g)) > 1 {
			hasFanout = true
		}
	}
	if !hasFanout {
		t.Error("extraction produced no internal fanout")
	}
}

func TestSynthesizeSingleLiteralCube(t *testing.T) {
	cv := mustParse(t, `
.i 2
.o 1
1- 1
01 1
`)
	c, err := Synthesize(cv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, cv, c)
}

func TestSynthesizeErrors(t *testing.T) {
	constant := mustParse(t, ".i 2\n.o 1\n-- 1\n")
	if _, err := Synthesize(constant, Options{}); err == nil {
		t.Error("constant-true cube should fail")
	}
	empty := mustParse(t, ".i 2\n.o 2\n11 10\n")
	if _, err := Synthesize(empty, Options{}); err == nil {
		t.Error("empty ON-set output should fail")
	}
	cv := mustParse(t, ".i 2\n.o 1\n11 1\n")
	if _, err := Synthesize(cv, Options{MaxArity: 1}); err == nil {
		t.Error("MaxArity=1 should fail")
	}
}

func TestSynthesizeUnusedInput(t *testing.T) {
	// Input b never appears: the PI must still exist, fanout-free.
	cv := mustParse(t, ".i 2\n.o 1\n1- 1\n")
	c, err := Synthesize(cv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Inputs()); got != 2 {
		t.Fatalf("inputs = %d, want 2", got)
	}
	equivalent(t, cv, c)
}

func TestDuplicateOutputNames(t *testing.T) {
	cv := &pla.Cover{
		Name: "dup", NumIn: 1, NumOut: 2,
		OutNames: []string{"f", "f"},
		Cubes: []pla.Cube{
			{In: []pla.Trit{pla.T1}, Out: []bool{true, true}},
		},
	}
	c, err := Synthesize(cv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Outputs()) != 2 {
		t.Fatal("lost an output")
	}
}

func BenchmarkSynthesize(b *testing.B) {
	cv := gen.RandomPLA("bench", gen.PLAOptions{Inputs: 16, Outputs: 8, Cubes: 60}, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(cv, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
