package fsim

import (
	"math/big"

	"rdfault/internal/circuit"
	"rdfault/internal/tgen"
)

// Counts holds non-enumerative detection counts for one test.
type Counts struct {
	// Robust and NonRobust are the numbers of logical paths the test
	// detects at each strength (Robust <= NonRobust).
	Robust    *big.Int
	NonRobust *big.Int
}

// Count computes how many logical paths the test detects, without
// enumerating them — the non-enumerative counting idea of Pomeranz and
// Reddy (reference [16] of the paper) applied to fault simulation.
//
// The key observation is that under a fixed test, detectability is a
// per-lead property: a lead either blocks sensitization (a side input is
// controlling in v2), supports only non-robust propagation, or supports
// robust propagation. Detected-path counts are then a linear-time path
// count over the admissible sub-DAG, which works even for c6288-class
// circuits whose detected sets are far too large to list.
func (s *Simulator) Count(t tgen.Test) Counts {
	s.prepare(t)
	c := s.c
	n := c.NumGates()
	// upNR[g] / upR[g]: number of admissible path prefixes from a
	// transitioning PI to g (non-robust / robust admissibility).
	upNR := make([]*big.Int, n)
	upR := make([]*big.Int, n)
	zero := new(big.Int)
	for i := range upNR {
		upNR[i], upR[i] = zero, zero
	}
	for _, pi := range c.Inputs() {
		if s.v1[pi] != s.v2[pi] {
			one := big.NewInt(1)
			upNR[pi], upR[pi] = one, one
		}
	}
	res := Counts{Robust: new(big.Int), NonRobust: new(big.Int)}
	for _, g := range c.TopoOrder() {
		typ := c.Type(g)
		fanin := c.Fanin(g)
		switch typ {
		case circuit.Input:
			continue
		case circuit.Output:
			res.NonRobust.Add(res.NonRobust, upNR[fanin[0]])
			res.Robust.Add(res.Robust, upR[fanin[0]])
			upNR[g], upR[g] = upNR[fanin[0]], upR[fanin[0]]
		case circuit.Buf, circuit.Not:
			upNR[g], upR[g] = upNR[fanin[0]], upR[fanin[0]]
		default:
			ctrl, _ := typ.Controlling()
			sumNR := new(big.Int)
			sumR := new(big.Int)
			for pin, f := range fanin {
				nrOK, rOK := s.leadAdmissible(g, pin, ctrl)
				_ = f
				if nrOK {
					sumNR.Add(sumNR, upNR[fanin[pin]])
				}
				if rOK {
					sumR.Add(sumR, upR[fanin[pin]])
				}
			}
			upNR[g], upR[g] = sumNR, sumR
		}
	}
	return res
}

// leadAdmissible classifies the lead entering pin of gate g under the
// prepared test: can a sensitized path run through it non-robustly /
// robustly?
func (s *Simulator) leadAdmissible(g circuit.GateID, pin int, ctrl bool) (nrOK, rOK bool) {
	c := s.c
	onPathCtrl := s.v2[c.Fanin(g)[pin]] == ctrl
	nrOK, rOK = true, true
	for p, f := range c.Fanin(g) {
		if p == pin {
			continue
		}
		if s.v2[f] == ctrl {
			return false, false
		}
		if !onPathCtrl && !s.stable[f] {
			rOK = false
		}
	}
	return nrOK, rOK
}
