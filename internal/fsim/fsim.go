// Package fsim is a path delay fault simulator in the spirit of Schulz,
// Fink and Fuchs (DAC 1989, reference [6] of the paper): given a
// two-pattern test, it determines every logical path the test detects
// robustly and non-robustly, enumerating sensitized paths with
// depth-first pruning over the simulated values.
//
// Combined with the test generator (package tgen) it yields the classic
// ATPG flow with fault dropping: generate a test for one uncovered path,
// simulate it, and drop every other path it happens to detect — the
// CompactTests helper. RD identification slots in front of this flow,
// shrinking the target list (Section VI).
package fsim

import (
	"rdfault/internal/circuit"
	"rdfault/internal/paths"
	"rdfault/internal/tgen"
)

// Result lists the logical paths one test detects. Robust detection
// implies non-robust detection, so Robust is a subset of NonRobust.
type Result struct {
	Robust    []paths.Logical
	NonRobust []paths.Logical
}

// Simulator fault-simulates two-pattern tests on one circuit. Not safe
// for concurrent use.
type Simulator struct {
	c      *circuit.Circuit
	v1     []bool
	v2     []bool
	stable []bool
}

// New returns a Simulator for c.
func New(c *circuit.Circuit) *Simulator {
	n := c.NumGates()
	return &Simulator{
		c:      c,
		v1:     make([]bool, n),
		v2:     make([]bool, n),
		stable: make([]bool, n),
	}
}

// prepare simulates both vectors and the conservative hazard-free
// stability of every gate (a gate is stable when some input is stably
// controlling or all inputs are stable).
func (s *Simulator) prepare(t tgen.Test) {
	c := s.c
	copyVals := func(dst []bool, in []bool) {
		full := c.EvalBool(in)
		copy(dst, full)
	}
	copyVals(s.v1, t.V1)
	copyVals(s.v2, t.V2)
	for i, pi := range c.Inputs() {
		s.stable[pi] = t.V1[i] == t.V2[i]
	}
	for _, g := range c.TopoOrder() {
		typ := c.Type(g)
		fanin := c.Fanin(g)
		switch typ {
		case circuit.Input:
		case circuit.Output, circuit.Buf, circuit.Not:
			s.stable[g] = s.stable[fanin[0]]
		default:
			ctrl, _ := typ.Controlling()
			anyStCtrl, allSt := false, true
			for _, f := range fanin {
				if s.stable[f] && s.v2[f] == ctrl {
					anyStCtrl = true
				}
				if !s.stable[f] {
					allSt = false
				}
			}
			s.stable[g] = anyStCtrl || allSt
		}
	}
}

// Detects fault-simulates one test and returns the detected paths. The
// enumeration prunes subtrees as soon as neither robust nor non-robust
// sensitization can be extended, so the cost is proportional to the
// sensitized portion of the circuit.
func (s *Simulator) Detects(t tgen.Test) *Result {
	s.prepare(t)
	res := &Result{}
	c := s.c
	var (
		gates []circuit.GateID
		pins  []int
	)
	var dfs func(g circuit.GateID, robust bool)
	dfs = func(g circuit.GateID, robust bool) {
		gates = append(gates, g)
		defer func() { gates = gates[:len(gates)-1] }()
		if c.Type(g) == circuit.Output {
			lp := paths.Logical{
				Path:     paths.Path{Gates: gates, Pins: pins}.Clone(),
				FinalOne: s.v2[gates[0]],
			}
			res.NonRobust = append(res.NonRobust, lp)
			if robust {
				res.Robust = append(res.Robust, lp)
			}
			return
		}
		for _, e := range c.Fanout(g) {
			next := e.To
			typ := c.Type(next)
			rOK, nrOK := robust, true
			if ctrl, hasCtrl := typ.Controlling(); hasCtrl {
				onPathCtrl := s.v2[g] == ctrl
				for p, f := range c.Fanin(next) {
					if p == e.Pin {
						continue
					}
					if s.v2[f] == ctrl {
						// A controlling side value blocks all detection.
						nrOK = false
						break
					}
					if !onPathCtrl && !s.stable[f] {
						rOK = false
					}
				}
			}
			if !nrOK {
				continue
			}
			pins = append(pins, e.Pin)
			dfs(next, rOK)
			pins = pins[:len(pins)-1]
		}
	}
	for _, pi := range c.Inputs() {
		if s.v1[pi] == s.v2[pi] {
			continue // no transition launched
		}
		gates = gates[:0]
		pins = pins[:0]
		dfs(pi, true)
	}
	return res
}

// Coverage summarizes a compaction run.
type Coverage struct {
	Targets int
	// RobustDetected targets are covered by robust tests; NonRobust-
	// Detected counts the additional targets only reached by the
	// non-robust fallback pass (when enabled).
	RobustDetected    int
	NonRobustDetected int
	Tests             int
	Aborted           int // targets whose generation hit the backtrack limit
}

// Detected returns the number of covered targets at any strength.
func (cv Coverage) Detected() int { return cv.RobustDetected + cv.NonRobustDetected }

// Percent returns 100*Detected/Targets.
func (cv Coverage) Percent() float64 {
	if cv.Targets == 0 {
		return 0
	}
	return 100 * float64(cv.Detected()) / float64(cv.Targets)
}

// CompactOptions tunes CompactTests.
type CompactOptions struct {
	// AllowNonRobust adds a second pass generating non-robust tests for
	// targets no robust test covers — the weaker-but-useful test class
	// the paper's reference [11] advocates.
	AllowNonRobust bool
}

// CompactTests builds a compact test set for the target paths: for each
// still-uncovered target it asks the generator for a robust test,
// fault-simulates it, and drops every target the test detects robustly
// (fault dropping). With opt.AllowNonRobust, remaining targets get a
// second pass of non-robust tests with non-robust dropping. Untestable
// targets stay uncovered; aborted generations are counted separately.
func CompactTests(c *circuit.Circuit, targets []paths.Logical, gn *tgen.Generator, opt CompactOptions) ([]tgen.Test, Coverage) {
	sim := New(c)
	cov := Coverage{Targets: len(targets)}
	robustCovered := make(map[string]bool)
	nrCovered := make(map[string]bool)
	var tests []tgen.Test
	for _, target := range targets {
		key := target.Key()
		if robustCovered[key] {
			continue
		}
		t, ok, aborted := gn.RobustTest(target)
		if aborted {
			cov.Aborted++
			continue
		}
		if !ok {
			continue // robustly untestable
		}
		tests = append(tests, t)
		res := sim.Detects(t)
		for _, lp := range res.Robust {
			robustCovered[lp.Key()] = true
		}
		for _, lp := range res.NonRobust {
			nrCovered[lp.Key()] = true
		}
		if !robustCovered[key] {
			// The generated witness must detect its own target; failing
			// that indicates an internal inconsistency worth surfacing.
			panic("fsim: generated robust test does not detect its target")
		}
	}
	if opt.AllowNonRobust {
		for _, target := range targets {
			key := target.Key()
			if robustCovered[key] || nrCovered[key] {
				continue
			}
			t, ok, aborted := gn.NonRobustTest(target)
			if aborted {
				cov.Aborted++
				continue
			}
			if !ok {
				continue
			}
			tests = append(tests, t)
			res := sim.Detects(t)
			for _, lp := range res.NonRobust {
				nrCovered[lp.Key()] = true
			}
			if !nrCovered[key] {
				panic("fsim: generated non-robust test does not detect its target")
			}
		}
	}
	cov.Tests = len(tests)
	for _, target := range targets {
		switch {
		case robustCovered[target.Key()]:
			cov.RobustDetected++
		case opt.AllowNonRobust && nrCovered[target.Key()]:
			cov.NonRobustDetected++
		}
	}
	return tests, cov
}

// ReduceTests drops tests that are redundant for the given targets: a
// reverse-order elimination pass (classic static compaction). A test is
// kept only if it robustly detects at least one target no later-kept test
// covers; with allowNonRobust, non-robust detection counts for targets
// nothing detects robustly.
func ReduceTests(c *circuit.Circuit, tests []tgen.Test, targets []paths.Logical, allowNonRobust bool) []tgen.Test {
	sim := New(c)
	targetKeys := make(map[string]bool, len(targets))
	for _, lp := range targets {
		targetKeys[lp.Key()] = true
	}
	// Detection sets per test, restricted to targets.
	robustOf := make([][]string, len(tests))
	nrOf := make([][]string, len(tests))
	for i, t := range tests {
		res := sim.Detects(t)
		for _, lp := range res.Robust {
			if k := lp.Key(); targetKeys[k] {
				robustOf[i] = append(robustOf[i], k)
			}
		}
		if allowNonRobust {
			for _, lp := range res.NonRobust {
				if k := lp.Key(); targetKeys[k] {
					nrOf[i] = append(nrOf[i], k)
				}
			}
		}
	}
	// Which targets are robustly coverable at all by this set?
	robustCoverable := map[string]bool{}
	for i := range tests {
		for _, k := range robustOf[i] {
			robustCoverable[k] = true
		}
	}
	coveredR := map[string]int{}
	coveredNR := map[string]int{}
	keep := make([]bool, len(tests))
	for i := range tests {
		keep[i] = true
		for _, k := range robustOf[i] {
			coveredR[k]++
		}
		for _, k := range nrOf[i] {
			coveredNR[k]++
		}
	}
	// Reverse elimination: drop a test if every contribution it makes is
	// covered by another kept test.
	for i := len(tests) - 1; i >= 0; i-- {
		needed := false
		for _, k := range robustOf[i] {
			if coveredR[k] == 1 {
				needed = true
				break
			}
		}
		if !needed && allowNonRobust {
			for _, k := range nrOf[i] {
				if !robustCoverable[k] && coveredNR[k] == 1 {
					needed = true
					break
				}
			}
		}
		if needed {
			continue
		}
		keep[i] = false
		for _, k := range robustOf[i] {
			coveredR[k]--
		}
		for _, k := range nrOf[i] {
			coveredNR[k]--
		}
	}
	var out []tgen.Test
	for i, t := range tests {
		if keep[i] {
			out = append(out, t)
		}
	}
	return out
}
