package fsim

import (
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
	"rdfault/internal/tgen"
)

func allLogical(c *circuit.Circuit) []paths.Logical {
	var out []paths.Logical
	paths.ForEachLogical(c, func(lp paths.Logical) bool {
		out = append(out, paths.Logical{Path: lp.Path.Clone(), FinalOne: lp.FinalOne})
		return true
	})
	return out
}

func keys(lps []paths.Logical) map[string]bool {
	m := make(map[string]bool, len(lps))
	for _, lp := range lps {
		m[lp.Key()] = true
	}
	return m
}

func TestGeneratedTestsAreDetected(t *testing.T) {
	// Cross-validation of fsim against tgen: a robust witness for a path
	// must robustly detect that path under fault simulation, and a
	// non-robust witness must non-robustly detect it.
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 15, Outputs: 2}, seed)
		gn := tgen.NewGenerator(c)
		sim := New(c)
		for _, lp := range allLogical(c) {
			if tt, ok, _ := gn.RobustTest(lp); ok {
				res := sim.Detects(tt)
				if !keys(res.Robust)[lp.Key()] {
					t.Fatalf("seed %d: robust witness for %s not robustly detected",
						seed, lp.Path.String(c))
				}
			}
			if tt, ok, _ := gn.NonRobustTest(lp); ok {
				res := sim.Detects(tt)
				if !keys(res.NonRobust)[lp.Key()] {
					t.Fatalf("seed %d: non-robust witness for %s not detected",
						seed, lp.Path.String(c))
				}
			}
		}
	}
}

func TestRobustSubsetOfNonRobust(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 20, Outputs: 2}, seed)
		sim := New(c)
		n := len(c.Inputs())
		for trial := 0; trial < 20; trial++ {
			tt := randomTest(n, seed*100+int64(trial))
			res := sim.Detects(tt)
			nr := keys(res.NonRobust)
			for _, lp := range res.Robust {
				if !nr[lp.Key()] {
					t.Fatalf("seed %d: robustly detected path missing from non-robust set", seed)
				}
			}
		}
	}
}

func randomTest(n int, seed int64) tgen.Test {
	v1 := make([]bool, n)
	v2 := make([]bool, n)
	x := uint64(seed)*2654435761 + 12345
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		v1[i] = x&(1<<17) != 0
		v2[i] = x&(1<<43) != 0
	}
	return tgen.Test{V1: v1, V2: v2}
}

// TestDetectionMatchesDirectCheck verifies the DFS against an independent
// per-path conditions check over the simulated values.
func TestDetectionMatchesDirectCheck(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 15, Outputs: 2}, seed)
		sim := New(c)
		n := len(c.Inputs())
		for trial := 0; trial < 10; trial++ {
			tt := randomTest(n, seed*31+int64(trial))
			res := sim.Detects(tt)
			gotR := keys(res.Robust)
			gotNR := keys(res.NonRobust)
			for _, lp := range allLogical(c) {
				wantR, wantNR := directCheck(c, tt, lp)
				if gotR[lp.Key()] != wantR || gotNR[lp.Key()] != wantNR {
					t.Fatalf("seed %d: %s (rise=%v): fsim (R=%v NR=%v) vs direct (R=%v NR=%v)",
						seed, lp.Path.String(c), lp.FinalOne,
						gotR[lp.Key()], gotNR[lp.Key()], wantR, wantNR)
				}
			}
		}
	}
}

// directCheck evaluates the robust/non-robust detection conditions for
// one logical path under one test, by direct simulation.
func directCheck(c *circuit.Circuit, tt tgen.Test, lp paths.Logical) (robust, nonRobust bool) {
	val1 := c.EvalBool(tt.V1)
	val2 := c.EvalBool(tt.V2)
	stable := make([]bool, c.NumGates())
	for i, pi := range c.Inputs() {
		stable[pi] = tt.V1[i] == tt.V2[i]
	}
	for _, g := range c.TopoOrder() {
		typ := c.Type(g)
		fanin := c.Fanin(g)
		switch typ {
		case circuit.Input:
		case circuit.Output, circuit.Buf, circuit.Not:
			stable[g] = stable[fanin[0]]
		default:
			ctrl, _ := typ.Controlling()
			anyStCtrl, allSt := false, true
			for _, f := range fanin {
				if stable[f] && val2[f] == ctrl {
					anyStCtrl = true
				}
				if !stable[f] {
					allSt = false
				}
			}
			stable[g] = anyStCtrl || allSt
		}
	}
	pi := lp.Path.PI()
	if val1[pi] == val2[pi] || val2[pi] != lp.FinalOne {
		return false, false
	}
	robust, nonRobust = true, true
	for i := 1; i < len(lp.Path.Gates); i++ {
		g := lp.Path.Gates[i]
		ctrl, hasCtrl := c.Type(g).Controlling()
		if !hasCtrl {
			continue
		}
		pin := lp.Path.Pins[i-1]
		onPathCtrl := val2[c.Fanin(g)[pin]] == ctrl
		for p, f := range c.Fanin(g) {
			if p == pin {
				continue
			}
			if val2[f] == ctrl {
				return false, false
			}
			if !onPathCtrl && !stable[f] {
				robust = false
			}
		}
	}
	return robust, nonRobust
}

func TestNoTransitionNoDetection(t *testing.T) {
	c := gen.PaperExample()
	sim := New(c)
	v := []bool{true, false, true}
	res := sim.Detects(tgen.Test{V1: v, V2: v})
	if len(res.NonRobust) != 0 {
		t.Fatalf("static test detected %d paths", len(res.NonRobust))
	}
}

func TestCompactTestsCoversRobustTargets(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 15, Outputs: 2}, seed)
		gn := tgen.NewGenerator(c)
		// Targets: every robustly testable path.
		var targets []paths.Logical
		for _, lp := range allLogical(c) {
			if gn.Classify(lp) == tgen.Robust {
				targets = append(targets, lp)
			}
		}
		tests, cov := CompactTests(c, targets, gn, CompactOptions{})
		if cov.Detected() != len(targets) {
			t.Fatalf("seed %d: covered %d of %d robust targets", seed, cov.Detected(), len(targets))
		}
		if cov.Percent() != 100 && len(targets) > 0 {
			t.Fatalf("seed %d: coverage %v%%", seed, cov.Percent())
		}
		if len(tests) > len(targets) {
			t.Fatalf("seed %d: more tests than targets", seed)
		}
		// Compaction should usually help; at minimum it must not exceed
		// one test per target (checked above). Log the ratio.
		if len(targets) > 0 {
			t.Logf("seed %d: %d targets covered by %d tests", seed, len(targets), len(tests))
		}
	}
}

func TestCompactTestsSkipsUntestable(t *testing.T) {
	c := gen.PaperExample()
	gn := tgen.NewGenerator(c)
	targets := allLogical(c) // includes untestable paths
	tests, cov := CompactTests(c, targets, gn, CompactOptions{})
	if cov.Targets != 8 {
		t.Fatalf("targets = %d", cov.Targets)
	}
	// Only the 4 robustly testable paths can be covered.
	if cov.Detected() != 4 || cov.RobustDetected != 4 {
		t.Fatalf("detected = %d (robust %d), want 4", cov.Detected(), cov.RobustDetected)
	}
	// With the non-robust fallback the fifth (non-robust-only) path is
	// also covered.
	_, cov2 := CompactTests(c, targets, gn, CompactOptions{AllowNonRobust: true})
	if cov2.Detected() != 5 || cov2.NonRobustDetected != 1 {
		t.Fatalf("with fallback: detected = %d (nr %d), want 5 (1)", cov2.Detected(), cov2.NonRobustDetected)
	}
	if cov.Aborted != 0 {
		t.Fatalf("aborted = %d", cov.Aborted)
	}
	if len(tests) == 0 || len(tests) > 4 {
		t.Fatalf("test count = %d", len(tests))
	}
}

func BenchmarkDetects(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 16, Gates: 200, Outputs: 8}, 7)
	sim := New(c)
	tt := randomTest(16, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Detects(tt)
	}
}

func TestReduceTestsPreservesCoverage(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 15, Outputs: 2}, seed)
		gn := tgen.NewGenerator(c)
		targets := allLogical(c)
		tests, cov := CompactTests(c, targets, gn, CompactOptions{AllowNonRobust: true})
		reduced := ReduceTests(c, tests, targets, true)
		if len(reduced) > len(tests) {
			t.Fatalf("seed %d: reduction grew the set", seed)
		}
		// Coverage must be identical.
		count := func(ts []tgen.Test) (int, int) {
			sim := New(c)
			r := map[string]bool{}
			nr := map[string]bool{}
			tk := keys(targets)
			for _, tt := range ts {
				res := sim.Detects(tt)
				for _, lp := range res.Robust {
					if tk[lp.Key()] {
						r[lp.Key()] = true
					}
				}
				for _, lp := range res.NonRobust {
					if tk[lp.Key()] {
						nr[lp.Key()] = true
					}
				}
			}
			return len(r), len(nr)
		}
		r0, nr0 := count(tests)
		r1, nr1 := count(reduced)
		if r1 != r0 {
			t.Fatalf("seed %d: robust coverage dropped %d -> %d", seed, r0, r1)
		}
		if nr1 < nr0 {
			// Only targets with no robust coverage anywhere are protected
			// in the non-robust sense.
			t.Logf("seed %d: non-robust union shrank %d -> %d (allowed: robustly-covered targets)", seed, nr0, nr1)
		}
		_ = cov
		if len(reduced) < len(tests) {
			t.Logf("seed %d: reduced %d -> %d tests", seed, len(tests), len(reduced))
		}
	}
}
