package fsim

import (
	"math/big"
	"testing"

	"rdfault/internal/gen"
	"rdfault/internal/tgen"
)

// TestCountMatchesEnumeration cross-checks the non-enumerative counter
// against explicit detection enumeration.
func TestCountMatchesEnumeration(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 25, Outputs: 3}, seed)
		sim := New(c)
		n := len(c.Inputs())
		for trial := 0; trial < 15; trial++ {
			tt := randomTest(n, seed*77+int64(trial))
			res := sim.Detects(tt)
			cnt := sim.Count(tt)
			if cnt.NonRobust.Cmp(big.NewInt(int64(len(res.NonRobust)))) != 0 {
				t.Fatalf("seed %d trial %d: counted %v non-robust, enumerated %d",
					seed, trial, cnt.NonRobust, len(res.NonRobust))
			}
			if cnt.Robust.Cmp(big.NewInt(int64(len(res.Robust)))) != 0 {
				t.Fatalf("seed %d trial %d: counted %v robust, enumerated %d",
					seed, trial, cnt.Robust, len(res.Robust))
			}
		}
	}
}

func TestCountStaticTestIsZero(t *testing.T) {
	c := gen.PaperExample()
	sim := New(c)
	v := []bool{false, true, false}
	cnt := sim.Count(tgen.Test{V1: v, V2: v})
	if cnt.NonRobust.Sign() != 0 || cnt.Robust.Sign() != 0 {
		t.Fatalf("static test counted %v/%v detections", cnt.Robust, cnt.NonRobust)
	}
}

// TestCountScalesToMultiplier demonstrates the non-enumerative point: a
// single all-inputs-toggle test on the 8x8 multiplier detects an
// astronomically large non-robust set that could never be enumerated.
func TestCountScalesToMultiplier(t *testing.T) {
	c := gen.ArrayMultiplier(8, gen.XorNAND)
	sim := New(c)
	n := len(c.Inputs())
	v1 := make([]bool, n)
	v2 := make([]bool, n)
	for i := range v2 {
		v2[i] = true
	}
	cnt := sim.Count(tgen.Test{V1: v1, V2: v2})
	if cnt.NonRobust.Sign() < 0 || cnt.Robust.Sign() < 0 {
		t.Fatal("negative count")
	}
	if cnt.Robust.Cmp(cnt.NonRobust) > 0 {
		t.Fatalf("robust %v > non-robust %v", cnt.Robust, cnt.NonRobust)
	}
	t.Logf("8x8 multiplier, all-rising test: robust %v, non-robust %v detections",
		cnt.Robust, cnt.NonRobust)
}

func BenchmarkCount(b *testing.B) {
	c := gen.ArrayMultiplier(12, gen.XorNAND)
	sim := New(c)
	n := len(c.Inputs())
	v1 := make([]bool, n)
	v2 := make([]bool, n)
	for i := range v2 {
		v2[i] = i%3 != 0
	}
	tt := tgen.Test{V1: v1, V2: v2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Count(tt)
	}
}
