package oracle

import (
	"errors"
	"fmt"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/stabilize"
)

func randCircuit(seed int64) *circuit.Circuit {
	return gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 14, Outputs: 2}, seed)
}

func sortsFor(c *circuit.Circuit) []circuit.InputSort {
	return []circuit.InputSort{
		circuit.PinOrderSort(c),
		circuit.PinOrderSort(c).Inverse(),
		core.Heuristic1Sort(c),
	}
}

// TestMatchesStabilizeAssignment: the oracle's LP(σ^π) — rebuilt from
// bit-parallel simulation and a fresh Algorithm 1 walk — must equal the
// set computed by the independent stabilize.ComputeAssignment
// implementation, for every seed and sort.
func TestMatchesStabilizeAssignment(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := randCircuit(seed)
		for si, s := range sortsFor(c) {
			r, err := Classify(c, s)
			if err != nil {
				t.Fatalf("seed %d sort %d: %v", seed, si, err)
			}
			a, err := stabilize.ComputeAssignment(c, stabilize.ChooseBySort(s))
			if err != nil {
				t.Fatal(err)
			}
			want := a.LogicalPaths()
			if len(r.LP) != len(want) {
				t.Fatalf("seed %d sort %d: oracle |LP|=%d, stabilize |LP|=%d",
					seed, si, len(r.LP), len(want))
			}
			for k := range want {
				if !r.LP[k] {
					t.Fatalf("seed %d sort %d: stabilize path %q missing from oracle LP", seed, si, k)
				}
			}
			if rd := len(a.RDSet()); rd != r.RD() {
				t.Fatalf("seed %d sort %d: oracle RD=%d, stabilize RD=%d", seed, si, r.RD(), rd)
			}
		}
	}
}

// TestLemma1Containment: the oracle's own three exact sets must satisfy
// T(C) ⊆ LP(σ^π) ⊆ FS(C) for every sort (Lemma 1).
func TestLemma1Containment(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := randCircuit(seed)
		for si, s := range sortsFor(c) {
			r, err := Classify(c, s)
			if err != nil {
				t.Fatalf("seed %d sort %d: %v", seed, si, err)
			}
			for k := range r.T {
				if !r.LP[k] {
					t.Fatalf("seed %d sort %d: T ⊄ LP(σ^π) at %q", seed, si, k)
				}
			}
			for k := range r.LP {
				if !r.FS[k] {
					t.Fatalf("seed %d sort %d: LP(σ^π) ⊄ FS at %q", seed, si, k)
				}
			}
		}
	}
}

// TestPaperExample pins the running example's exact numbers: 8 logical
// paths, |LP(σ^π)| = 5 under the optimum sort the paper derives in
// Figure 5, hence 3 exact-RD paths.
func TestPaperExample(t *testing.T) {
	c := gen.PaperExample()
	best := 1 << 30
	for _, s := range sortsFor(c) {
		r, err := Classify(c, s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Total() != 8 {
			t.Fatalf("paper example: %d logical paths, want 8", r.Total())
		}
		if n := len(r.LP); n < best {
			best = n
		}
	}
	if best != 5 {
		t.Fatalf("best |LP(σ^π)| over sorts = %d, want the paper's optimum 5", best)
	}
}

// TestWidthLimit: the oracle must refuse over-wide circuits with the
// same typed error as stabilize.ComputeAssignment.
func TestWidthLimit(t *testing.T) {
	b := circuit.NewBuilder("wide")
	var ins []circuit.GateID
	for i := 0; i < stabilize.MaxAssignmentInputs+1; i++ {
		ins = append(ins, b.Input(fmt.Sprintf("i%d", i)))
	}
	b.Output("o", b.Gate(circuit.Or, "or", ins...))
	c := b.MustBuild()

	_, err := Classify(c, circuit.PinOrderSort(c))
	if !errors.Is(err, stabilize.ErrTooManyInputs) {
		t.Fatalf("Classify on %d inputs: err = %v, want ErrTooManyInputs", len(c.Inputs()), err)
	}
	var wide *stabilize.TooManyInputsError
	if !errors.As(err, &wide) {
		t.Fatalf("err %v is not a *stabilize.TooManyInputsError", err)
	}
	if wide.Inputs != stabilize.MaxAssignmentInputs+1 || wide.Max != stabilize.MaxAssignmentInputs {
		t.Fatalf("error fields = %+v, want Inputs=%d Max=%d",
			wide, stabilize.MaxAssignmentInputs+1, stabilize.MaxAssignmentInputs)
	}
}

// TestInvalidSort: a malformed sort is rejected, not silently misread.
func TestInvalidSort(t *testing.T) {
	c := randCircuit(1)
	if _, err := Classify(c, circuit.InputSort{}); err == nil {
		t.Fatal("Classify accepted an empty input sort")
	}
}
