// Package oracle is the exact, brute-force counterpart of the fast
// RD identifier in internal/core: it runs Algorithm 1 semantics directly,
// with no local-implication approximation, no prime-segment pruning and
// no shared code with the enumerator it cross-checks.
//
// For every input vector v (all 2^n of them, simulated 64 lanes at a time
// by the bit-parallel simulator) it rebuilds the stabilizing system
// σ^π(v) from first principles — walk back from the primary outputs,
// keeping the minimum-π controlling input of every controlled gate — and
// unions the systems' logical paths into the exact LP(σ^π). Every
// logical path of the circuit is then classified exactly:
//
//   - member of LP(σ^π) or robust dependent (the complement, Theorem 1);
//   - non-robustly testable (T(C)), decided by the internal/tgen
//     two-pattern test generator;
//   - functionally sensitizable (FS(C)), decided twice over by
//     independent engines — a SAT query and a BDD evaluation — whose
//     verdicts must agree.
//
// The package exists to be disagreed with: internal/oracle/diff fuzzes
// random circuits and fails loudly if the fast identifier ever marks a
// path RD that the oracle proves is not, or if the Lemma 1 containment
// T(C) ⊆ LP(σ^π) ⊆ FS(C) breaks.
//
// Exhaustive enumeration caps the input width; the limit (and its typed
// error) is stabilize.CheckWidth, shared with ComputeAssignment.
package oracle

import (
	"fmt"
	"sort"

	"rdfault/internal/bdd"
	"rdfault/internal/circuit"
	"rdfault/internal/paths"
	"rdfault/internal/satsolver"
	"rdfault/internal/sim"
	"rdfault/internal/stabilize"
	"rdfault/internal/tgen"
)

// Result is the exact classification of every logical path of one
// circuit under one input sort. Sets are keyed by paths.Logical.Key().
type Result struct {
	// Paths lists every logical path of the circuit (cloned, stable
	// iteration order); Keys[i] is Paths[i].Key().
	Paths []paths.Logical
	Keys  []string
	// LP is the exact LP(σ^π): the union over all input vectors v of the
	// logical paths of the stabilizing system σ^π(v).
	LP map[string]bool
	// T is the exact non-robustly-testable set T(C) (tgen verdicts).
	T map[string]bool
	// FS is the exact functionally sensitizable set FS(C) (SAT and BDD
	// verdicts, cross-checked).
	FS map[string]bool
}

// Total returns |LP(C)|, the number of logical paths.
func (r *Result) Total() int { return len(r.Paths) }

// RD returns |RD(σ^π)| = |LP(C)| − |LP(σ^π)|: the exact count of robust
// dependent paths under the sort.
func (r *Result) RD() int { return len(r.Paths) - len(r.LP) }

// IsRD reports whether the logical path with the given key is exactly
// robust dependent (outside LP(σ^π)).
func (r *Result) IsRD(key string) bool { return !r.LP[key] }

// Classify runs the exact oracle on c under input sort s. It refuses
// circuits wider than the exhaustive limit with the same typed error as
// stabilize.ComputeAssignment (*stabilize.TooManyInputsError).
func Classify(c *circuit.Circuit, s circuit.InputSort) (*Result, error) {
	if err := stabilize.CheckWidth(len(c.Inputs())); err != nil {
		return nil, err
	}
	if err := s.Validate(c); err != nil {
		return nil, fmt.Errorf("oracle: %v", err)
	}
	r := &Result{
		LP: make(map[string]bool),
		T:  make(map[string]bool),
		FS: make(map[string]bool),
	}
	paths.ForEachLogical(c, func(lp paths.Logical) bool {
		cl := paths.Logical{Path: lp.Path.Clone(), FinalOne: lp.FinalOne}
		r.Paths = append(r.Paths, cl)
		r.Keys = append(r.Keys, cl.Key())
		return true
	})

	if err := exactLP(c, s, r.LP); err != nil {
		return nil, err
	}
	if err := exactTestability(c, r); err != nil {
		return nil, err
	}
	return r, nil
}

// exactLP fills dst with the keys of the exact LP(σ^π), by exhaustive
// vector enumeration. Stable values come from the 64-lane bit-parallel
// simulator — an implementation the implication engine of the fast
// identifier never touches — and the stabilizing system of each vector is
// rebuilt by a literal reading of Algorithm 1.
func exactLP(c *circuit.Circuit, s circuit.InputSort, dst map[string]bool) error {
	n := len(c.Inputs())
	words := make([]uint64, n)
	numVec := uint64(1) << n

	// Scratch per vector: membership bitmaps for the system's gates and
	// leads, reused across vectors.
	inSys := make([]bool, c.NumGates())
	inLead := make([]bool, c.NumLeads())
	val := make([]bool, c.NumGates())
	var queue []circuit.GateID

	// Path DFS scratch.
	var gates []circuit.GateID
	var pins []int
	piIdx := make(map[circuit.GateID]int, n)
	for i, pi := range c.Inputs() {
		piIdx[pi] = i
	}

	for base := uint64(0); base < numVec; base += 64 {
		lanes := numVec - base
		if lanes > 64 {
			lanes = 64
		}
		// Lane k simulates vector base+k: bit k of words[i] is input i.
		for i := range words {
			var w uint64
			for k := uint64(0); k < lanes; k++ {
				if (base+k)>>uint(i)&1 == 1 {
					w |= 1 << k
				}
			}
			words[i] = w
		}
		sim64 := sim.EvalParallel(c, words)

		for k := uint64(0); k < lanes; k++ {
			for g := range val {
				val[g] = sim64[g]>>k&1 == 1
			}
			// Algorithm 1, Steps 1–3: include every PO, then walk each
			// included gate's fanin. A simple gate with at least one
			// controlling input keeps exactly the minimum-π one; a gate
			// with none keeps all of its inputs.
			for i := range inSys {
				inSys[i] = false
			}
			for i := range inLead {
				inLead[i] = false
			}
			queue = queue[:0]
			add := func(g circuit.GateID) {
				if !inSys[g] {
					inSys[g] = true
					queue = append(queue, g)
				}
			}
			keep := func(g circuit.GateID, pin int) {
				inLead[c.LeadIndex(g, pin)] = true
				add(c.Fanin(g)[pin])
			}
			for _, po := range c.Outputs() {
				add(po)
			}
			for len(queue) > 0 {
				g := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				t := c.Type(g)
				if t == circuit.Input {
					continue
				}
				ctrl, hasCtrl := t.Controlling()
				best := -1
				if hasCtrl {
					for pin, f := range c.Fanin(g) {
						if val[f] != ctrl {
							continue
						}
						if best < 0 || s.Pos[g][pin] < s.Pos[g][best] {
							best = pin
						}
					}
				}
				if best >= 0 {
					keep(g, best)
					continue
				}
				for pin := range c.Fanin(g) {
					keep(g, pin)
				}
			}

			// LP(v, σ^π(v)): every PI-to-PO walk over kept leads, paired
			// with the transition ending on the PI's value under v.
			var dfs func(g circuit.GateID)
			dfs = func(g circuit.GateID) {
				gates = append(gates, g)
				if c.Type(g) == circuit.Output {
					lp := paths.Logical{
						Path:     paths.Path{Gates: gates, Pins: pins},
						FinalOne: val[gates[0]],
					}
					dst[lp.Key()] = true
				} else {
					for _, e := range c.Fanout(g) {
						if !inLead[c.LeadIndex(e.To, e.Pin)] {
							continue
						}
						pins = append(pins, e.Pin)
						dfs(e.To)
						pins = pins[:len(pins)-1]
					}
				}
				gates = gates[:len(gates)-1]
			}
			for _, pi := range c.Inputs() {
				if inSys[pi] {
					dfs(pi)
				}
			}
		}
	}
	return nil
}

// exactTestability fills r.T and r.FS. Non-robust testability comes from
// the tgen two-pattern generator; functional sensitizability is decided
// by a SAT query over the whole circuit and re-decided by a BDD
// evaluation — two independent exact engines that must agree.
func exactTestability(c *circuit.Circuit, r *Result) error {
	gn := tgen.NewGenerator(c)
	gn.MaxBacktracks = 10_000_000

	sat := satsolver.New()
	vars := satsolver.AddCircuit(sat, c)
	m := bdd.New(len(c.Inputs()))
	m.SetNodeLimit(8 << 20)
	fn := bdd.FromCircuit(m, c)

	for i, lp := range r.Paths {
		key := r.Keys[i]
		switch cl := gn.Classify(lp); cl {
		case tgen.Robust, tgen.NonRobust:
			r.T[key] = true
		case tgen.Unknown:
			return fmt.Errorf("oracle: tgen classification aborted on %s", lp.Path.String(c))
		}

		bySAT := fsBySAT(c, sat, vars, lp)
		byBDD := fsByBDD(c, m, fn, lp)
		if bySAT != byBDD {
			return fmt.Errorf("oracle: FS engines disagree on %s (sat=%v bdd=%v)",
				lp.Path.String(c), bySAT, byBDD)
		}
		if bySAT {
			r.FS[key] = true
		}
	}
	return nil
}

// fsConditions calls fn(g, v) for every stable-value condition of the
// functional sensitization of lp (Definition 4): the on-path values
// implied by the transition, plus non-controlling side inputs wherever
// the on-path input is non-controlling. It reports false if fn rejects.
func fsConditions(c *circuit.Circuit, lp paths.Logical, fn func(g circuit.GateID, v bool) bool) bool {
	v := lp.FinalOne
	if !fn(lp.Path.Gates[0], v) {
		return false
	}
	for i := 1; i < len(lp.Path.Gates); i++ {
		g := lp.Path.Gates[i]
		t := c.Type(g)
		onPath := v
		v = v != t.Inverting()
		if !fn(g, v) {
			return false
		}
		ctrl, hasCtrl := t.Controlling()
		if !hasCtrl || onPath == ctrl {
			continue
		}
		for pin, f := range c.Fanin(g) {
			if pin != lp.Path.Pins[i-1] && !fn(f, !ctrl) {
				return false
			}
		}
	}
	return true
}

// fsBySAT decides FS membership with one incremental SAT query: assume
// every condition literal and ask for a satisfying input vector.
func fsBySAT(c *circuit.Circuit, sat *satsolver.Solver, vars satsolver.CircuitVars, lp paths.Logical) bool {
	var assume []satsolver.Lit
	fsConditions(c, lp, func(g circuit.GateID, v bool) bool {
		assume = append(assume, vars.Lit(g, v))
		return true
	})
	return sat.Solve(assume...)
}

// fsByBDD decides the same membership by conjoining the condition
// functions' BDDs: the conjunction is non-false iff some input vector
// meets every condition.
func fsByBDD(c *circuit.Circuit, m *bdd.Manager, fn []bdd.Ref, lp paths.Logical) bool {
	acc := bdd.True
	fsConditions(c, lp, func(g circuit.GateID, v bool) bool {
		f := fn[g]
		if !v {
			f = m.Not(f)
		}
		acc = m.And(acc, f)
		return acc != bdd.False
	})
	return acc != bdd.False
}

// SortedRD returns the exact RD set's keys in sorted order (for
// deterministic reporting and diffs).
func (r *Result) SortedRD() []string {
	var out []string
	for _, k := range r.Keys {
		if !r.LP[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
