package diff

import (
	"errors"
	"strings"
	"testing"
)

// TestSeedsClean: a block of seeds must cross-check clean on all three
// invariants, at 1 and 4 workers, and at least one seed must exhibit a
// nonzero approximation gap — otherwise the oracle proves nothing the
// fast identifier doesn't already know, and the harness would be
// vacuous.
func TestSeedsClean(t *testing.T) {
	for _, workers := range []int{1, 4} {
		gapSeeds := 0
		for seed := int64(1); seed <= 24; seed++ {
			rep, err := CheckSeed(seed, Options{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if rep.Gap < 0 {
				t.Fatalf("workers=%d seed %d: negative gap %d (fast selected fewer than exact — unsound)",
					workers, seed, rep.Gap)
			}
			if rep.Gap > 0 {
				gapSeeds++
			}
			if !rep.Metamorphic {
				t.Fatalf("workers=%d seed %d: metamorphic checks did not run", workers, seed)
			}
		}
		if gapSeeds == 0 {
			t.Errorf("workers=%d: no seed showed an approximation gap; the differential check is vacuous", workers)
		}
	}
}

// TestReportString: the row renderer carries the fields the sweep logs.
func TestReportString(t *testing.T) {
	rep, err := CheckSeed(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"seed 3", "fastRD=", "exactRD=", "gap="} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

// TestViolationError: violations are typed and name the seed and the
// invariant, so a fuzz crash is self-describing.
func TestViolationError(t *testing.T) {
	v := &Violation{Seed: 7, Invariant: "soundness", Detail: "x"}
	var err error = v
	var got *Violation
	if !errors.As(err, &got) || got.Seed != 7 {
		t.Fatalf("errors.As failed on %v", err)
	}
	if !strings.Contains(v.Error(), "seed 7") || !strings.Contains(v.Error(), "soundness") {
		t.Fatalf("unhelpful violation message %q", v.Error())
	}
}

// TestSortRotation: the three sort families all appear over a seed block,
// so the harness does not silently test one sort shape only.
func TestSortRotation(t *testing.T) {
	seen := map[string]bool{}
	for seed := int64(1); seed <= 3; seed++ {
		c := Circuit(seed, Options{})
		_, name := SortFor(c, seed)
		seen[name] = true
	}
	for _, want := range []string{"pin", "inverse", "heu1"} {
		if !seen[want] {
			t.Errorf("sort family %q never drawn", want)
		}
	}
}
