package diff

import (
	"errors"
	"testing"
)

// FuzzCrossCheck is the native fuzz entry point: any int64 is a valid
// seed, so the fuzzer explores the circuit space directly. Run with
//
//	go test -fuzz FuzzCrossCheck ./internal/oracle/diff
//
// A crash artifact is a single seed; replay it with
// diff.CheckSeed(seed, Options{}).
func FuzzCrossCheck(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rep, err := CheckSeed(seed, Options{})
		var v *Violation
		if errors.As(err, &v) {
			t.Fatalf("invariant violated: %v", v)
		}
		if err != nil {
			// Engine capacity errors (tgen abort, BDD blowup) are not
			// invariant violations; skip, don't crash.
			t.Skipf("seed %d: %v", seed, err)
		}
		if rep.Gap < 0 {
			t.Fatalf("seed %d: negative approximation gap %d", seed, rep.Gap)
		}
	})
}
