// Package diff is the differential fuzzing harness that cross-checks the
// fast RD identifier (internal/core) against the exact oracle
// (internal/oracle). One seed drives one check: generate a random
// circuit, pick an input sort, and machine-check three invariants —
//
//	(a) soundness: every path the fast identifier marks robust dependent
//	    is robust dependent per the oracle (exact LP(σ^π) ⊆ LP^sup(σ^π));
//	(b) Lemma 1 containment: T(C) ⊆ LP(σ^π) ⊆ FS(C), all three computed
//	    exactly by the oracle;
//	(c) metamorphic stability: the fast identifier's Selected/RD counts
//	    are invariant under input-sort-preserving gate relabeling and
//	    fanout-free buffer insertion (internal/synth rewrites).
//
// A violated invariant is returned as a *Violation error naming the seed
// and the offending path, so a fuzzer's minimized corpus entry points
// straight at the bug. The per-seed Report also records the measured
// approximation gap |LP^sup| − |LP(σ^π)| = |exact RD| − |fast RD|: the
// price of checking conditions by local implications only, which the
// nightly sweep (internal/exp.RunCrossCheck) tracks over time.
package diff

import (
	"fmt"
	"math/big"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/oracle"
	"rdfault/internal/paths"
	"rdfault/internal/synth"
)

// Options shapes the per-seed check.
type Options struct {
	// Inputs/Gates/Outputs/MaxArity shape the random circuit (defaults
	// 6/20/3/4 — wide-fanin gates are where the local approximation
	// actually loses paths, so this shape surfaces nonzero gaps). Inputs
	// beyond the exhaustive limit make every seed fail with stabilize's
	// typed width error.
	Inputs, Gates, Outputs, MaxArity int
	// Workers is the fast pass's worker count (0 = serial).
	Workers int
	// SkipMetamorphic disables invariant (c) (the fuzz targets keep it on;
	// the resume test drives the fast pass itself and skips it).
	SkipMetamorphic bool
}

func (o Options) withDefaults() Options {
	if o.Inputs == 0 {
		o.Inputs = 6
	}
	if o.Gates == 0 {
		o.Gates = 20
	}
	if o.Outputs == 0 {
		o.Outputs = 3
	}
	if o.MaxArity == 0 {
		o.MaxArity = 4
	}
	return o
}

// Report summarizes one seed's cross-check.
type Report struct {
	Seed    int64
	Circuit string
	Sort    string // which sort family the seed drew
	Total   int    // |LP(C)|
	// Fast (approximate) counts.
	FastSelected int // |LP^sup(σ^π)|
	FastRD       int
	// Exact counts.
	ExactSelected int // |LP(σ^π)|
	ExactRD       int
	// Gap = FastSelected − ExactSelected ≥ 0: paths the local
	// approximation could not prove RD.
	Gap int
	// Exact testability set sizes (Lemma 1's outer sets).
	TSize, FSSize int
	// Metamorphic reports whether invariant (c) ran.
	Metamorphic bool
}

func (r *Report) String() string {
	return fmt.Sprintf("seed %-4d %-14s sort=%-7s paths=%-5d fastRD=%-5d exactRD=%-5d gap=%-3d T=%-4d FS=%d",
		r.Seed, r.Circuit, r.Sort, r.Total, r.FastRD, r.ExactRD, r.Gap, r.TSize, r.FSSize)
}

// Violation is a failed invariant: a bug in the fast identifier, the
// oracle, or (for Lemma1) the theory glue between them.
type Violation struct {
	Seed      int64
	Invariant string // "soundness", "lemma1", "metamorphic"
	Detail    string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("diff: seed %d violates %s: %s", v.Seed, v.Invariant, v.Detail)
}

// Circuit returns the seed's random circuit — the shared generator, so a
// failing seed can be replayed and minimized outside the harness.
func Circuit(seed int64, opt Options) *circuit.Circuit {
	opt = opt.withDefaults()
	return gen.RandomCircuit(fmt.Sprintf("fuzz%d", seed), gen.RandomOptions{
		Inputs:   opt.Inputs,
		Gates:    opt.Gates,
		Outputs:  opt.Outputs,
		MaxArity: opt.MaxArity,
	}, seed)
}

// SortFor returns the input sort the seed draws: seeds rotate through
// pin order, inverse pin order and Heuristic 1, so the harness exercises
// both arbitrary and optimized sorts.
func SortFor(c *circuit.Circuit, seed int64) (circuit.InputSort, string) {
	switch seed % 3 {
	case 1:
		return circuit.PinOrderSort(c).Inverse(), "inverse"
	case 2:
		return core.Heuristic1Sort(c), "heu1"
	default:
		return circuit.PinOrderSort(c), "pin"
	}
}

// FastPass runs the approximate identifier and returns its surviving
// path key set alongside the Result.
func FastPass(c *circuit.Circuit, s *circuit.InputSort, opt core.Options) (*core.Result, map[string]bool, error) {
	keys := make(map[string]bool)
	opt.Sort = s
	prev := opt.OnPath
	opt.OnPath = func(lp paths.Logical) {
		keys[lp.Key()] = true
		if prev != nil {
			prev(lp)
		}
	}
	res, err := core.Enumerate(c, core.SigmaPi, opt)
	if err != nil {
		return nil, nil, err
	}
	return res, keys, nil
}

// CheckSeed generates the seed's circuit and checks all three invariants
// against the exact oracle. It returns the per-seed report, or a
// *Violation (wrapped in err) when an invariant fails.
func CheckSeed(seed int64, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	c := Circuit(seed, opt)
	s, sortName := SortFor(c, seed)

	fast, fastKeys, err := FastPass(c, &s, core.Options{Workers: opt.Workers})
	if err != nil {
		return nil, err
	}
	if !fast.Complete {
		return nil, fmt.Errorf("diff: seed %d: fast pass incomplete (%v)", seed, fast.Status)
	}

	ex, err := oracle.Classify(c, s)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Seed:          seed,
		Circuit:       c.Name(),
		Sort:          sortName,
		Total:         ex.Total(),
		FastSelected:  int(fast.Selected),
		ExactSelected: ex.Total() - ex.RD(),
		ExactRD:       ex.RD(),
		TSize:         len(ex.T),
		FSSize:        len(ex.FS),
	}
	rep.FastRD = rep.Total - rep.FastSelected
	rep.Gap = rep.FastSelected - rep.ExactSelected

	if err := CheckInvariants(seed, c, ex, fast, fastKeys); err != nil {
		return rep, err
	}
	if !opt.SkipMetamorphic {
		if err := checkMetamorphic(seed, c, s, fast, opt); err != nil {
			return rep, err
		}
		rep.Metamorphic = true
	}
	return rep, nil
}

// CheckInvariants verifies soundness (a) and Lemma 1 containment (b) for
// an already-run fast pass against an oracle result. Exposed so the
// resume test can drive the fast pass itself (interrupting and resuming
// it) and still assert the same invariants on the outcome.
func CheckInvariants(seed int64, c *circuit.Circuit, ex *oracle.Result, fast *core.Result, fastKeys map[string]bool) error {
	if big.NewInt(int64(ex.Total())).Cmp(fast.Total) != 0 {
		return &Violation{Seed: seed, Invariant: "soundness",
			Detail: fmt.Sprintf("path universes differ: oracle %d, fast %v", ex.Total(), fast.Total)}
	}
	if int64(len(fastKeys)) != fast.Selected {
		return &Violation{Seed: seed, Invariant: "soundness",
			Detail: fmt.Sprintf("fast pass delivered %d distinct paths but counted %d", len(fastKeys), fast.Selected)}
	}
	for i, key := range ex.Keys {
		inLP := ex.LP[key]
		// (a) fast-RD ⊆ exact-RD, i.e. exact LP(σ^π) ⊆ LP^sup(σ^π).
		if inLP && !fastKeys[key] {
			return &Violation{Seed: seed, Invariant: "soundness",
				Detail: fmt.Sprintf("path %s (final=%v) is in exact LP(σ^π) but the fast identifier marked it RD",
					ex.Paths[i].Path.String(c), ex.Paths[i].FinalOne)}
		}
		// (b) T(C) ⊆ LP(σ^π) ⊆ FS(C).
		if ex.T[key] && !inLP {
			return &Violation{Seed: seed, Invariant: "lemma1",
				Detail: fmt.Sprintf("non-robustly testable path %s outside exact LP(σ^π)", ex.Paths[i].Path.String(c))}
		}
		if inLP && !ex.FS[key] {
			return &Violation{Seed: seed, Invariant: "lemma1",
				Detail: fmt.Sprintf("path %s in exact LP(σ^π) but not functionally sensitizable", ex.Paths[i].Path.String(c))}
		}
	}
	return nil
}

// checkMetamorphic verifies invariant (c): rerunning the fast identifier
// on a relabeled and on a buffer-inserted isomorph (with the sort
// transported through the gate mapping) must reproduce the Selected and
// RD counts exactly.
func checkMetamorphic(seed int64, c *circuit.Circuit, s circuit.InputSort, fast *core.Result, opt Options) error {
	relabeled, perm, err := synth.Relabel(c, seed)
	if err != nil {
		return err
	}
	if err := compareRewrite(seed, "relabel", relabeled, transportSort(s, relabeled, perm), fast, opt); err != nil {
		return err
	}
	buffered, gmap, err := synth.InsertBuffers(c, seed, 0.3)
	if err != nil {
		return err
	}
	return compareRewrite(seed, "buffers", buffered, transportSort(s, buffered, gmap), fast, opt)
}

// transportSort carries an input sort through a gate mapping: mapped
// gates keep their pin positions (rewrites preserve pin order), and new
// gates (inserted buffers) get the only possible order for their single
// pin.
func transportSort(s circuit.InputSort, c2 *circuit.Circuit, gmap []circuit.GateID) circuit.InputSort {
	s2 := circuit.PinOrderSort(c2)
	for g, ng := range gmap {
		if ng == circuit.None {
			continue
		}
		s2.Pos[ng] = append([]int(nil), s.Pos[g]...)
	}
	return s2
}

func compareRewrite(seed int64, rewrite string, c2 *circuit.Circuit, s2 circuit.InputSort, want *core.Result, opt Options) error {
	got, _, err := FastPass(c2, &s2, core.Options{Workers: opt.Workers})
	if err != nil {
		return err
	}
	if !got.Complete {
		return fmt.Errorf("diff: seed %d: %s pass incomplete (%v)", seed, rewrite, got.Status)
	}
	if got.Total.Cmp(want.Total) != 0 || got.Selected != want.Selected || got.RD.Cmp(want.RD) != 0 {
		return &Violation{Seed: seed, Invariant: "metamorphic",
			Detail: fmt.Sprintf("%s rewrite changed counts: total %v→%v, selected %d→%d, RD %v→%v",
				rewrite, want.Total, got.Total, want.Selected, got.Selected, want.RD, got.RD)}
	}
	return nil
}
