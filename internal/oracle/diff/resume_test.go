package diff

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"rdfault/internal/core"
	"rdfault/internal/oracle"
	"rdfault/internal/paths"
)

// TestResumeMidCrossCheck interrupts the fast pass of a cross-check
// repeatedly (Workers=4, context cancel every few paths), resumes each
// round from its checkpoint (round-tripped through the JSON encoding),
// and asserts the stitched-together run is bit-identical to an
// uninterrupted one — same Selected, RD and Segments, and the exact
// same delivered path set, each path exactly once. The union then has
// to pass the oracle's soundness and Lemma 1 invariants, so resume
// correctness is checked against ground truth, not just self-agreement.
func TestResumeMidCrossCheck(t *testing.T) {
	const seed = 6 // a seed with a nonzero approximation gap
	opt := Options{}.withDefaults()
	c := Circuit(seed, opt)
	s, _ := SortFor(c, seed)

	ref, refKeys, err := FastPass(c, &s, core.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Status != core.StatusComplete {
		t.Fatalf("reference status %v", ref.Status)
	}

	keys := make(map[string]bool)
	rounds := 0
	var cp *core.Checkpoint
	var res *core.Result
	for {
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		var dup string
		res, err = core.Enumerate(c, core.SigmaPi, core.Options{
			Workers:    4,
			Sort:       &s,
			Context:    ctx,
			Checkpoint: cp,
			OnPath: func(lp paths.Logical) {
				k := lp.Key()
				if keys[k] && dup == "" {
					dup = k
				}
				keys[k] = true
				n++
				if n == 10 {
					cancel()
					time.Sleep(2 * time.Millisecond)
				}
			},
		})
		cancel()
		if err != nil {
			t.Fatalf("round %d: %v", rounds, err)
		}
		if dup != "" {
			t.Fatalf("round %d: path %q delivered twice across resumes", rounds, dup)
		}
		if res.Status == core.StatusComplete {
			break
		}
		if res.Status != core.StatusCanceled {
			t.Fatalf("round %d: status %v", rounds, res.Status)
		}
		rounds++
		var buf bytes.Buffer
		if err := res.Checkpoint.Encode(&buf); err != nil {
			t.Fatalf("round %d: encode: %v", rounds, err)
		}
		if cp, err = core.DecodeCheckpoint(&buf); err != nil {
			t.Fatalf("round %d: decode: %v", rounds, err)
		}
		if rounds > 10000 {
			t.Fatal("resume did not converge")
		}
	}
	if rounds == 0 {
		t.Fatal("run was never interrupted; shrink the interrupt interval")
	}

	if res.Selected != ref.Selected {
		t.Errorf("Selected = %d, want %d", res.Selected, ref.Selected)
	}
	if res.Segments != ref.Segments {
		t.Errorf("Segments = %d, want %d", res.Segments, ref.Segments)
	}
	if res.RD == nil || ref.RD == nil || res.RD.Cmp(ref.RD) != 0 {
		t.Errorf("RD = %v, want %v", res.RD, ref.RD)
	}
	if len(keys) != len(refKeys) {
		t.Fatalf("resumed run delivered %d distinct paths, reference %d", len(keys), len(refKeys))
	}
	for k := range refKeys {
		if !keys[k] {
			t.Fatalf("reference path %q missing from resumed run", k)
		}
	}

	// The stitched run's output must satisfy the same ground-truth
	// invariants as an uninterrupted cross-check.
	ex, err := oracle.Classify(c, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariants(seed, c, ex, res, keys); err != nil {
		var v *Violation
		if errors.As(err, &v) {
			t.Fatalf("resumed run violates %s: %s", v.Invariant, v.Detail)
		}
		t.Fatal(err)
	}
}
