package analysis_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdfault/internal/analysis"
	"rdfault/internal/faultinject"
	"rdfault/internal/gen"
)

// TestEvictionDoesNotForkSingleflight targets the registry race window
// between Drop/SetCapacity and a concurrent For on the same circuit
// version: an eviction that lands while a Memo computation is in flight
// used to let the next For mint a second handle whose Memo cell
// "resurrects" the same computation, running it a second time in
// parallel. The guarantee under test: for one circuit version, two
// executions of the same memoized computation never overlap in time, no
// matter how the registry churns underneath. (Total executions may
// exceed one — an explicit Drop forgets completed values by design —
// but they must be strictly sequential.)
//
// Run it under the race detector (make race) to also exercise the
// registry/memo locking.
func TestEvictionDoesNotForkSingleflight(t *testing.T) {
	analysis.Reset()
	defer analysis.Reset()
	c := gen.PaperExample()

	var running, overlaps, runs atomic.Int64
	compute := func() (any, error) {
		if running.Add(1) > 1 {
			overlaps.Add(1)
		}
		runs.Add(1)
		time.Sleep(200 * time.Microsecond) // widen the window
		running.Add(-1)
		return "value", nil
	}

	const workers = 8
	const iters = 200
	stop := make(chan struct{})

	// Churn goroutine: evict the version as fast as possible, both ways.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			analysis.Drop(c)
			analysis.SetCapacity(1)
			analysis.SetCapacity(analysis.DefaultCapacity)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v, err := analysis.For(c).Memo("test.race", compute)
				if err != nil {
					t.Errorf("Memo: %v", err)
					return
				}
				if v.(string) != "value" {
					t.Errorf("Memo returned %v", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-churnDone

	if n := overlaps.Load(); n != 0 {
		t.Fatalf("singleflight forked: %d overlapping executions (runs=%d)", n, runs.Load())
	}
	if runs.Load() == 0 {
		t.Fatal("computation never ran")
	}
}

// TestMemoErrorRetriesAfterInjectedFailure: a KindError fault at
// PointAnalysisMemo fails the computation with a typed error; nothing is
// cached, and the next call succeeds.
func TestMemoErrorRetriesAfterInjectedFailure(t *testing.T) {
	analysis.Reset()
	defer analysis.Reset()
	c := gen.PaperExample()
	a := analysis.For(c)

	func() {
		defer faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
			Point: faultinject.PointAnalysisMemo,
			Kind:  faultinject.KindError,
		}))()
		_, err := a.Memo("test.inject", func() (any, error) { return 1, nil })
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("got %v, want ErrInjected", err)
		}
	}()

	v, err := a.Memo("test.inject", func() (any, error) { return 2, nil })
	if err != nil || v.(int) != 2 {
		t.Fatalf("retry after injected failure: v=%v err=%v", v, err)
	}
}

// TestMemoDropForgetsCompletedValues: an explicit Drop still forgets —
// the next handle recomputes (sequentially) rather than resurrecting the
// dropped handle's cache.
func TestMemoDropForgetsCompletedValues(t *testing.T) {
	analysis.Reset()
	defer analysis.Reset()
	c := gen.PaperExample()

	var runs atomic.Int64
	f := func() (any, error) { runs.Add(1); return runs.Load(), nil }

	a := analysis.For(c)
	if v, _ := a.Memo("test.drop", f); v.(int64) != 1 {
		t.Fatalf("first compute returned %v", v)
	}
	if v, _ := a.Memo("test.drop", f); v.(int64) != 1 {
		t.Fatalf("same handle recomputed: %v", v)
	}
	analysis.Drop(c)
	b := analysis.For(c)
	if b == a {
		t.Fatal("Drop did not forget the handle")
	}
	if v, _ := b.Memo("test.drop", f); v.(int64) != 2 {
		t.Fatalf("post-Drop handle served stale value %v", v)
	}
}
