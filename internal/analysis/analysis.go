// Package analysis is the derived-data manager of the RD pipeline: a
// concurrency-safe, lazily-memoized cache of everything that can be
// computed once per circuit and shared — exact big.Int path counts,
// levelization, SCOAP testability measures, static timing analyses, a
// free-list of implication engines, and a generic compute-once memo for
// higher layers (input sorts, Algorithm 3 passes).
//
// The design is the compiler "analysis manager" pattern: analyses are
// keyed on an immutable IR version (circuit.Circuit.Version, bumped by
// every Builder.Build), computed at most once per version even under
// concurrent demand (singleflight via per-handle locking), and can never
// go stale — a rewritten circuit is a new circuit with a new version, so
// handles of the old version simply stop being requested. The paper's
// speed claim rests on these analyses being cheap; this package makes
// them cheap *once* instead of cheap at every call site.
package analysis

import (
	"hash/maphash"
	"math"
	"math/big"
	"sync"

	"rdfault/internal/circuit"
	"rdfault/internal/faultinject"
	"rdfault/internal/logic"
	"rdfault/internal/paths"
	"rdfault/internal/scoap"
	"rdfault/internal/sim"
	"rdfault/internal/timing"
)

// DefaultCapacity bounds the number of circuit versions the global
// registry retains. Long-running services iterate over many circuits
// (per-cone extractions, DFT rewrites, suite sweeps); least-recently-used
// versions are evicted beyond this bound so the registry cannot grow
// without limit. Handed-out *Analysis handles stay valid after eviction —
// eviction only forgets the version-to-handle association.
const DefaultCapacity = 128

// Analysis is the compute-once handle set for one circuit version.
// All getters are safe for concurrent use; each underlying analysis is
// computed at most once per handle, with concurrent requesters blocking
// on the single in-flight computation rather than duplicating it.
type Analysis struct {
	c *circuit.Circuit

	countsOnce sync.Once
	counts     *paths.Counts

	logicalOnce sync.Once
	logical     *big.Int

	levelsOnce sync.Once
	levels     [][]circuit.GateID

	scoapOnce sync.Once
	scoapM    *scoap.Measures

	scoapSortOnce sync.Once
	scoapSort     circuit.InputSort

	timingMu sync.Mutex
	timings  map[uint64][]*timingEntry

	// engines is the logic.Engine free-list: enumeration workers and the
	// DFT analyses borrow engines instead of reallocating value arrays,
	// trails and watch queues per run. Engines are returned fully reset.
	// An explicit list (not a sync.Pool) so pooled engines survive GC
	// cycles and a steady-state borrow/return round trip performs zero
	// allocations — a sync.Pool may drop its contents at any GC and then
	// silently re-run NewEngine (val/queued/trail/queue arena allocations)
	// in the middle of the enumeration hot loop.
	engineMu sync.Mutex
	engines  []*logic.Engine

	memoMu sync.Mutex
	memo   map[string]any // completed memo values only
}

type timingEntry struct {
	gate []float64 // copied key: per-gate delays
	an   *timing.Analysis
}

// memoCell is one in-flight singleflight computation. Cells live in the
// global version-keyed inflight table (not in the handle) for exactly as
// long as the computation runs, so concurrent demand joins one
// computation even when Drop/SetCapacity retired the handle mid-flight
// and a later For minted a new one.
type memoCell struct {
	mu  sync.Mutex
	ran bool
	v   any
	err error
}

// inflightKey identifies one (circuit version, analysis) computation.
type inflightKey struct {
	version uint64
	key     string
}

// inflight is the cross-handle singleflight table. Entries are removed
// the moment their computation finishes (success or failure): completed
// values live only in handle-local caches, which is what keeps Drop's
// "forget this version" semantics intact.
var inflight = struct {
	mu sync.Mutex
	m  map[inflightKey]*memoCell
}{m: make(map[inflightKey]*memoCell)}

func newAnalysis(c *circuit.Circuit) *Analysis {
	return &Analysis{c: c}
}

// Circuit returns the circuit this handle set is bound to.
func (a *Analysis) Circuit() *circuit.Circuit { return a.c }

// Version returns the circuit version the handles are keyed on.
func (a *Analysis) Version() uint64 { return a.c.Version() }

// Flat returns the circuit's cache-flat netlist layout (CSR adjacency,
// type and level arrays). Like every derived artifact it is built once
// per circuit version and shared read-only; the call merely forwards to
// the layout cached on the circuit itself.
func (a *Analysis) Flat() *circuit.Flat { return a.c.Flat() }

// Counts returns the exact per-gate path counts, computed once per
// circuit version. The returned Counts (and the big.Ints it exposes) are
// shared — treat them as read-only.
func (a *Analysis) Counts() *paths.Counts {
	a.countsOnce.Do(func() { a.counts = paths.NewCounts(a.c) })
	return a.counts
}

// Logical returns the total number of logical paths |LP(C)|. The value
// is computed once and shared; do not mutate it — use CopyLogical for a
// caller-owned copy.
func (a *Analysis) Logical() *big.Int {
	a.logicalOnce.Do(func() { a.logical = a.Counts().Logical() })
	return a.logical
}

// CopyLogical returns a fresh copy of Logical, safe to mutate.
func (a *Analysis) CopyLogical() *big.Int {
	return new(big.Int).Set(a.Logical())
}

// Levels returns the levelization of the circuit: gates grouped by logic
// level (Levels()[l] lists every gate at level l, in GateID order; index
// 0 holds the PIs). Shared and read-only.
func (a *Analysis) Levels() [][]circuit.GateID {
	a.levelsOnce.Do(func() {
		lv := make([][]circuit.GateID, a.c.Depth()+1)
		for g := circuit.GateID(0); int(g) < a.c.NumGates(); g++ {
			l := a.c.Level(g)
			lv[l] = append(lv[l], g)
		}
		a.levels = lv
	})
	return a.levels
}

// SCOAP returns the SCOAP testability measures, computed once per
// circuit version. Shared and read-only.
func (a *Analysis) SCOAP() *scoap.Measures {
	a.scoapOnce.Do(func() { a.scoapM = scoap.Compute(a.c) })
	return a.scoapM
}

// SCOAPSort returns the SCOAP-driven input sort, derived once from the
// cached measures. Shared and read-only.
func (a *Analysis) SCOAPSort() circuit.InputSort {
	a.scoapSortOnce.Do(func() { a.scoapSort = a.SCOAP().Sort() })
	return a.scoapSort
}

var timingSeed = maphash.MakeSeed()

// Timing returns the static timing analysis for the given delays,
// computed once per (circuit version, delay vector). Distinct delay
// assignments get distinct cached analyses, keyed by delay content (the
// vector is copied, so later caller-side mutation of d cannot corrupt
// the cache). Shared and read-only.
func (a *Analysis) Timing(d sim.Delays) *timing.Analysis {
	var h maphash.Hash
	h.SetSeed(timingSeed)
	for _, v := range d.Gate {
		bits := math.Float64bits(v)
		var b [8]byte
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	key := h.Sum64()

	a.timingMu.Lock()
	defer a.timingMu.Unlock()
	if a.timings == nil {
		a.timings = make(map[uint64][]*timingEntry)
	}
	for _, e := range a.timings[key] {
		if delaysEqual(e.gate, d.Gate) {
			return e.an
		}
	}
	e := &timingEntry{
		gate: append([]float64(nil), d.Gate...),
		an:   timing.New(a.c, d),
	}
	a.timings[key] = append(a.timings[key], e)
	return e.an
}

func delaysEqual(x, y []float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// Engine borrows an implication engine for the handle's circuit from the
// free-list (allocating one only when the list is empty). The engine is
// clean: all gates at X, empty trail. Return it with PutEngine when
// done; an engine borrowed and never returned is simply garbage.
// Steady-state borrow/return round trips are allocation-free: popping
// reuses the retained list storage and the pooled engines are never
// dropped behind the caller's back.
func (a *Analysis) Engine() *logic.Engine {
	a.engineMu.Lock()
	if n := len(a.engines); n > 0 {
		e := a.engines[n-1]
		a.engines[n-1] = nil
		a.engines = a.engines[:n-1]
		a.engineMu.Unlock()
		return e
	}
	a.engineMu.Unlock()
	return logic.NewEngine(a.c)
}

// PutEngine resets e (O(trail), never O(circuit)) and returns it to the
// free-list for reuse. Engines created for a different circuit are
// dropped — cross-circuit trail leakage is structurally impossible.
func (a *Analysis) PutEngine(e *logic.Engine) {
	if e == nil || e.Circuit() != a.c {
		return
	}
	e.Reset()
	a.engineMu.Lock()
	a.engines = append(a.engines, e)
	a.engineMu.Unlock()
}

// Memo returns the compute-once value for key on this circuit version,
// invoking f at most once even under concurrent callers (later callers
// block on the in-flight computation and then share its result). If f
// returns a non-nil error nothing is cached and the error is returned —
// a later call retries. f must not recursively Memo the same key.
//
// The singleflight holds across registry churn: coordination is keyed on
// (circuit version, key) in a global in-flight table rather than on the
// handle, so a Drop/SetCapacity eviction racing with a long computation
// cannot let a freshly-minted handle start a second concurrent run of
// the same analysis. Completed values are cached per handle only — an
// explicit Drop still forgets them, and the next demand recomputes.
//
// Memo is the extension point for analyses that live in higher layers
// (input sorts, Algorithm 3's enumeration passes) and therefore cannot
// be named here without an import cycle. Keys are namespaced by
// convention: "<package>.<analysis>". Fault-injection point:
// faultinject.PointAnalysisMemo (a KindError rule makes the derived-data
// computation fail like an allocation would).
func (a *Analysis) Memo(key string, f func() (any, error)) (any, error) {
	a.memoMu.Lock()
	if v, ok := a.memo[key]; ok {
		a.memoMu.Unlock()
		return v, nil
	}
	a.memoMu.Unlock()

	if err := faultinject.Fire(faultinject.PointAnalysisMemo); err != nil {
		return nil, err
	}

	k := inflightKey{a.c.Version(), key}
	inflight.mu.Lock()
	cell, ok := inflight.m[k]
	if !ok {
		cell = &memoCell{}
		inflight.m[k] = cell
	}
	inflight.mu.Unlock()

	cell.mu.Lock()
	if !cell.ran {
		// Leader: run the computation, then retire the cell so completed
		// state lives only in handle caches (Drop must stay able to
		// forget it, and a failed run must be retryable).
		cell.ran = true
		cell.v, cell.err = f()
		inflight.mu.Lock()
		if inflight.m[k] == cell {
			delete(inflight.m, k)
		}
		inflight.mu.Unlock()
	}
	v, err := cell.v, cell.err
	cell.mu.Unlock()
	if err != nil {
		return nil, err
	}

	a.memoMu.Lock()
	if a.memo == nil {
		a.memo = make(map[string]any)
	}
	if prev, ok := a.memo[key]; ok {
		// A racing follower cached first; serve the one value every
		// earlier caller of this handle already saw.
		v = prev
	} else {
		a.memo[key] = v
	}
	a.memoMu.Unlock()
	return v, nil
}

// registry is the global version-keyed LRU of Analysis handles.
type registry struct {
	mu      sync.Mutex
	enabled bool
	cap     int
	entries map[uint64]*regEntry
	tick    uint64
}

type regEntry struct {
	an      *Analysis
	lastUse uint64
}

var global = &registry{enabled: true, cap: DefaultCapacity}

// For returns the shared Analysis handle set for c, creating it on first
// request. Two calls with the same circuit return the same handle (until
// LRU eviction); circuits with different versions never share handles,
// which is what makes rewriter output (synth, dft) unable to observe
// stale data. Safe for concurrent use.
//
// With caching disabled (SetEnabled(false)), For returns a fresh,
// unregistered handle every call — each call site then recomputes its
// analyses, which is exactly the pre-manager baseline the benchmarks
// compare against.
func For(c *circuit.Circuit) *Analysis {
	g := global
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.enabled {
		return newAnalysis(c)
	}
	g.tick++
	if e, ok := g.entries[c.Version()]; ok {
		e.lastUse = g.tick
		return e.an
	}
	if g.entries == nil {
		g.entries = make(map[uint64]*regEntry)
	}
	if len(g.entries) >= g.cap {
		g.evictOldestLocked()
	}
	a := newAnalysis(c)
	g.entries[c.Version()] = &regEntry{an: a, lastUse: g.tick}
	return a
}

// evictOldestLocked removes the least-recently-used entry. Linear scan:
// the registry is small (bounded by cap) and eviction is rare.
func (g *registry) evictOldestLocked() {
	var victim uint64
	first := true
	var oldest uint64
	for v, e := range g.entries {
		if first || e.lastUse < oldest {
			victim, oldest, first = v, e.lastUse, false
		}
	}
	if !first {
		delete(g.entries, victim)
	}
}

// Drop forgets the registered handle for c, if any. Outstanding handles
// stay usable; the next For(c) builds a fresh one.
func Drop(c *circuit.Circuit) {
	global.mu.Lock()
	defer global.mu.Unlock()
	delete(global.entries, c.Version())
}

// Reset empties the registry. Intended for tests and memory-pressure
// hooks.
func Reset() {
	global.mu.Lock()
	defer global.mu.Unlock()
	global.entries = nil
	global.tick = 0
}

// Len reports how many circuit versions are currently registered.
func Len() int {
	global.mu.Lock()
	defer global.mu.Unlock()
	return len(global.entries)
}

// SetCapacity bounds the registry to n entries (n < 1 is clamped to 1)
// and returns the previous bound, evicting LRU entries immediately if
// the registry is over the new bound.
func SetCapacity(n int) int {
	if n < 1 {
		n = 1
	}
	global.mu.Lock()
	defer global.mu.Unlock()
	prev := global.cap
	global.cap = n
	for len(global.entries) > n {
		global.evictOldestLocked()
	}
	return prev
}

// SetEnabled turns the global cache on or off and returns the previous
// state. Disabling does not clear already-registered entries (use Reset);
// it makes For hand out fresh unshared handles, restoring the
// recompute-everywhere baseline for A/B measurement.
func SetEnabled(enabled bool) bool {
	global.mu.Lock()
	defer global.mu.Unlock()
	prev := global.enabled
	global.enabled = enabled
	return prev
}
