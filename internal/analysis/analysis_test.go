package analysis_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
	"rdfault/internal/dft"
	"rdfault/internal/gen"
	"rdfault/internal/logic"
	"rdfault/internal/sim"
)

// TestForSameHandle: the manager is a cache — two requests for the same
// circuit share one handle set, and every derived analysis is the same
// object both times.
func TestForSameHandle(t *testing.T) {
	defer analysis.Reset()
	c := gen.PaperExample()
	a1 := analysis.For(c)
	a2 := analysis.For(c)
	if a1 != a2 {
		t.Fatal("For returned distinct handles for the same circuit")
	}
	if a1.Counts() != a2.Counts() {
		t.Fatal("Counts not shared across requests")
	}
	if a1.Logical() != a2.Logical() {
		t.Fatal("Logical not shared across requests")
	}
	if a1.SCOAP() != a2.SCOAP() {
		t.Fatal("SCOAP not shared across requests")
	}
	if a1.Circuit() != c || a1.Version() != c.Version() {
		t.Fatal("handle not bound to the requested circuit")
	}
}

// TestCopyLogicalIsCallerOwned: mutating the copy must not corrupt the
// shared cached total.
func TestCopyLogicalIsCallerOwned(t *testing.T) {
	defer analysis.Reset()
	c := gen.PaperExample()
	a := analysis.For(c)
	want := a.Logical().Int64()
	cp := a.CopyLogical()
	cp.SetInt64(-1)
	if got := a.Logical().Int64(); got != want {
		t.Fatalf("shared Logical corrupted through CopyLogical: %d, want %d", got, want)
	}
}

// TestInvalidationAfterRewrite: a rewritten circuit (DFT insertion here;
// synth and cone extraction behave identically because every rewriter
// builds through circuit.Builder) carries a strictly larger version and
// gets a fresh handle — stale derived data is structurally unreachable.
func TestInvalidationAfterRewrite(t *testing.T) {
	defer analysis.Reset()
	c := gen.PaperExample()
	a := analysis.For(c)
	before := a.CopyLogical()

	g, ok := c.GateByName("g")
	if !ok {
		t.Fatal("example gate missing")
	}
	mod, err := dft.Insert(c, []dft.Proposal{{Lead: circuit.Lead{To: g, Pin: 1}, ForceTo: true}})
	if err != nil {
		t.Fatal(err)
	}
	if mod.Version() <= c.Version() {
		t.Fatalf("rewrite did not bump the version: %d -> %d", c.Version(), mod.Version())
	}
	am := analysis.For(mod)
	if am == a {
		t.Fatal("rewritten circuit shares the original's handle")
	}
	// The original handle still serves its own (unchanged) data.
	if a.Logical().Cmp(before) != 0 {
		t.Fatal("original circuit's cached count changed after rewrite")
	}
	// The modified circuit has more paths (a test point adds gates/leads).
	if am.Logical().Cmp(before) <= 0 {
		t.Fatalf("modified circuit should count more logical paths: %v vs %v", am.Logical(), before)
	}
}

// TestConcurrentFor hammers For and the fixed analyses from many
// goroutines; under -race this is the singleflight soundness check, and
// in any mode every goroutine must observe the same shared objects.
func TestConcurrentFor(t *testing.T) {
	defer analysis.Reset()
	c := gen.ParityTree(16, gen.XorNAND)
	want := analysis.For(c)
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := analysis.For(c)
			if a != want {
				errs <- errors.New("distinct handle under concurrency")
				return
			}
			if a.Counts() != want.Counts() || a.SCOAP() != want.SCOAP() {
				errs <- errors.New("distinct analysis object under concurrency")
				return
			}
			if a.SCOAPSort().Pos == nil {
				errs <- errors.New("empty SCOAP sort")
				return
			}
			_ = a.Levels()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMemoSingleflight: under concurrent demand the memoized function
// runs exactly once and everyone shares its value; errors are not cached
// so a later call retries.
func TestMemoSingleflight(t *testing.T) {
	defer analysis.Reset()
	c := gen.PaperExample()
	a := analysis.For(c)

	var calls int32
	var mu sync.Mutex
	f := func() (any, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return "value", nil
	}
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := a.Memo("test.single", f)
			if err != nil || v.(string) != "value" {
				t.Errorf("Memo: v=%v err=%v", v, err)
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("memoized function ran %d times, want 1", calls)
	}

	// Errors are not cached: the next call retries and can succeed.
	boom := errors.New("boom")
	if _, err := a.Memo("test.err", func() (any, error) { return nil, boom }); err != boom {
		t.Fatalf("want boom, got %v", err)
	}
	v, err := a.Memo("test.err", func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("retry after error: v=%v err=%v", v, err)
	}
}

// TestEnginePoolNoLeakage: an engine returned to the pool carries no
// trace of its previous task — every gate reads X and the trail is empty
// — and an engine built for a different circuit is refused.
func TestEnginePoolNoLeakage(t *testing.T) {
	defer analysis.Reset()
	c := gen.PaperExample()
	a := analysis.For(c)

	e := a.Engine()
	if e.Circuit() != c {
		t.Fatal("engine bound to wrong circuit")
	}
	// Dirty it: assign every PI.
	for _, pi := range c.Inputs() {
		e.Assign(pi, true)
	}
	if e.Mark() == 0 {
		t.Fatal("assignments did not reach the trail")
	}
	a.PutEngine(e)

	// Drain the pool: every engine it hands back must be clean.
	for i := 0; i < 4; i++ {
		e2 := a.Engine()
		if e2.Mark() != 0 {
			t.Fatalf("pooled engine has a non-empty trail (%d)", e2.Mark())
		}
		for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
			if e2.Value(g) != logic.X {
				t.Fatalf("pooled engine leaks value at gate %d", g)
			}
		}
		a.PutEngine(e2)
	}

	// Cross-circuit engines are dropped, not pooled.
	other := gen.ParityTree(4, gen.XorNAND)
	a.PutEngine(logic.NewEngine(other)) // must not panic or poison the pool
	e3 := a.Engine()
	if e3.Circuit() != c {
		t.Fatal("pool handed out an engine for a different circuit")
	}
	a.PutEngine(nil) // tolerated
}

// TestEnginePoolZeroAllocSteadyState: once an engine exists, a
// borrow/work/return round trip is allocation-free and hands back the
// same retained engine — the free-list is an explicit list, so neither
// GC pressure nor the round trip itself can trigger a hidden NewEngine
// (val/queued/trail arena allocations) inside the enumeration hot loop.
func TestEnginePoolZeroAllocSteadyState(t *testing.T) {
	defer analysis.Reset()
	c := gen.PaperExample()
	a := analysis.For(c)
	pi := c.Inputs()

	seed := a.Engine()
	a.PutEngine(seed)

	got := a.Engine()
	if got != seed {
		t.Fatal("free-list did not retain the returned engine")
	}
	a.PutEngine(got)

	allocs := testing.AllocsPerRun(100, func() {
		e := a.Engine()
		m := e.Mark()
		for _, g := range pi {
			if !e.Assign(g, true) {
				break
			}
		}
		e.BacktrackTo(m)
		a.PutEngine(e)
	})
	if allocs != 0 {
		t.Fatalf("steady-state borrow/assign/return allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestTimingMemo: one analysis per (circuit, delay vector); equal
// content shares, distinct content does not, and caller-side mutation of
// the delay slice cannot corrupt the cache.
func TestTimingMemo(t *testing.T) {
	defer analysis.Reset()
	c := gen.PaperExample()
	a := analysis.For(c)

	d1 := sim.UnitDelays(c)
	an1 := a.Timing(d1)
	if an1 == nil {
		t.Fatal("nil timing analysis")
	}
	if a.Timing(sim.UnitDelays(c)) != an1 {
		t.Fatal("equal delay vectors did not share the analysis")
	}
	d2 := sim.RandomDelays(c, 1, 0.5, 2)
	if a.Timing(d2) == an1 {
		t.Fatal("distinct delay vectors shared an analysis")
	}
	// Mutate the caller's slice: the cached key must be unaffected.
	d1.Gate[0] += 100
	if a.Timing(sim.UnitDelays(c)) != an1 {
		t.Fatal("cache corrupted by caller-side delay mutation")
	}
}

// TestLRUCapacity: the registry never exceeds its bound and evicts the
// least recently used version first.
func TestLRUCapacity(t *testing.T) {
	analysis.Reset()
	prev := analysis.SetCapacity(2)
	defer func() {
		analysis.SetCapacity(prev)
		analysis.Reset()
	}()

	c1 := gen.ParityTree(2, gen.XorNAND)
	c2 := gen.ParityTree(4, gen.XorNAND)
	c3 := gen.ParityTree(8, gen.XorNAND)
	a1 := analysis.For(c1)
	analysis.For(c2)
	analysis.For(c1) // refresh c1: c2 is now the LRU victim
	analysis.For(c3)
	if n := analysis.Len(); n > 2 {
		t.Fatalf("registry holds %d entries over capacity 2", n)
	}
	if analysis.For(c1) != a1 {
		t.Fatal("recently used entry was evicted")
	}
	if analysis.For(c2) == nil {
		t.Fatal("re-request after eviction failed")
	}

	// Shrinking below the current size evicts immediately.
	analysis.SetCapacity(1)
	if n := analysis.Len(); n > 1 {
		t.Fatalf("SetCapacity(1) left %d entries", n)
	}
}

// TestDropAndReset: Drop forgets one version, Reset forgets all; handed
// out handles stay usable.
func TestDropAndReset(t *testing.T) {
	analysis.Reset()
	defer analysis.Reset()
	c := gen.PaperExample()
	a := analysis.For(c)
	analysis.Drop(c)
	if analysis.For(c) == a {
		t.Fatal("Drop did not forget the handle")
	}
	if a.Logical() == nil {
		t.Fatal("dropped handle unusable")
	}
	analysis.For(c)
	analysis.Reset()
	if analysis.Len() != 0 {
		t.Fatal("Reset left entries behind")
	}
}

// TestSetEnabled: with the cache off, For returns fresh unshared handles
// — the recompute-everywhere baseline the benchmarks compare against.
func TestSetEnabled(t *testing.T) {
	analysis.Reset()
	prev := analysis.SetEnabled(false)
	defer func() {
		analysis.SetEnabled(prev)
		analysis.Reset()
	}()
	c := gen.PaperExample()
	a1 := analysis.For(c)
	a2 := analysis.For(c)
	if a1 == a2 {
		t.Fatal("disabled cache still shares handles")
	}
	if analysis.Len() != 0 {
		t.Fatal("disabled cache registered a handle")
	}
	// Fresh handles still compute correct (independent) data.
	if a1.Logical().Cmp(a2.Logical()) != 0 {
		t.Fatal("independent handles disagree on the path count")
	}
}

// TestLevels: levelization groups every gate exactly once, at its level.
func TestLevels(t *testing.T) {
	defer analysis.Reset()
	c := gen.ParityTree(8, gen.XorNAND)
	lv := analysis.For(c).Levels()
	seen := 0
	for l, gates := range lv {
		for _, g := range gates {
			if c.Level(g) != l {
				t.Fatalf("gate %d listed at level %d, is at %d", g, l, c.Level(g))
			}
			seen++
		}
	}
	if seen != c.NumGates() {
		t.Fatalf("levelization covers %d of %d gates", seen, c.NumGates())
	}
}

// TestManyConesBounded: the leafdag-style access pattern — a handle per
// extracted cone — must stay within the registry bound.
func TestManyConesBounded(t *testing.T) {
	analysis.Reset()
	prev := analysis.SetCapacity(8)
	defer func() {
		analysis.SetCapacity(prev)
		analysis.Reset()
	}()
	for i := 0; i < 40; i++ {
		c := gen.RandomCircuit(fmt.Sprintf("cone%d", i),
			gen.RandomOptions{Inputs: 3, Gates: 6, Outputs: 1}, int64(i+1))
		if analysis.For(c).Logical() == nil {
			t.Fatal("count failed")
		}
	}
	if n := analysis.Len(); n > 8 {
		t.Fatalf("registry grew to %d entries despite capacity 8", n)
	}
}
