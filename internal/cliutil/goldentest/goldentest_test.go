package goldentest

import "testing"

// TestNormalize: duration tokens collapse; everything that merely looks
// numeric survives.
func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"sort=0s enum=12ms", "sort=<DUR> enum=<DUR>"},
		{"done in 1m3.5s flat", "done in <DUR> flat"},
		{"12.4µs and 7us and 250ns", "<DUR> and <DUR> and <DUR>"},
		{"c499 has 8 paths at t=0.000; 40.00% covered", "c499 has 8 paths at t=0.000; 40.00% covered"},
		{"52 cubes, 12 in, 6 out", "52 cubes, 12 in, 6 out"},
		{"seed 3 fuzz3 paths=466", "seed 3 fuzz3 paths=466"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
