// Package goldentest runs a command's main() in-process with a captured
// stdout and compares the (normalized) output against a checked-in
// golden file. Every tool under cmd/ gets a smoke test from it: a tiny
// fixture in, a snapshot out, failing the build when an output format
// drifts unannounced.
//
// Regenerate snapshots with
//
//	go test ./cmd/... -update-golden
package goldentest

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update-golden", false, "rewrite the golden files with the current output")

// Run invokes mainFn as if the tool had been executed as
// `tool args...`, with a fresh flag set (so repeated runs in one test
// binary re-register their flags cleanly) and stdout captured. The
// test's working directory is where the tool runs; chdir first (t.Chdir)
// to sandbox tools that write files.
func Run(t *testing.T, tool string, mainFn func(), args ...string) string {
	t.Helper()
	oldArgs, oldFlags, oldStdout := os.Args, flag.CommandLine, os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Args = append([]string{tool}, args...)
	flag.CommandLine = flag.NewFlagSet(tool, flag.ExitOnError)
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	defer func() {
		os.Args, flag.CommandLine, os.Stdout = oldArgs, oldFlags, oldStdout
	}()
	mainFn()
	w.Close()
	out := <-done
	r.Close()
	return out
}

// durRE matches Go-formatted durations ("0s", "187ms", "1m3.5s",
// "12.4µs") so wall-clock readings normalize out of the snapshot. Units
// are ordered longest-first and the token must start at a word boundary,
// so "c499" or "t=0.000" survive untouched.
var durRE = regexp.MustCompile(`\b\d+(\.\d+)?(ns|µs|us|ms|h|m|s)((\d+(\.\d+)?)(ns|µs|us|ms|h|m|s))*`)

// Normalize replaces every duration token with <DUR>.
func Normalize(s string) string {
	return durRE.ReplaceAllString(s, "<DUR>")
}

// Check normalizes got and compares it with the golden file at path
// (absolute, or relative to the current directory — resolve before any
// chdir). With -update-golden it rewrites the file instead.
func Check(t *testing.T, path, got string) {
	t.Helper()
	norm := Normalize(got)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(norm), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -update-golden` once): %v", err)
	}
	if norm != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s--- want ---\n%s", path, norm, want)
	}
}

// Fixture returns the absolute path of a file under the test package's
// testdata directory, resolved before any chdir.
func Fixture(t *testing.T, name string) string {
	t.Helper()
	p, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	return p
}

// Golden returns the absolute path of the golden file for name,
// resolved before any chdir (the file need not exist yet when
// -update-golden is set).
func Golden(t *testing.T, name string) string {
	t.Helper()
	p, err := filepath.Abs(filepath.Join("testdata", name+".golden"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}
