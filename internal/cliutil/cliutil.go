// Package cliutil holds the shared resilience plumbing of the command
// line tools: the -timeout / -checkpoint / -resume flag trio, a
// SIGINT-canceled context so ^C degrades a run gracefully instead of
// killing it, and checkpoint save/load around interrupted enumerations.
package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"rdfault/internal/core"
)

// Flags is the resilience flag trio shared by every tool.
type Flags struct {
	// Timeout bounds the run's wall clock (0 = none). Suite-style tools
	// apply it per circuit and quarantine offenders; single-circuit tools
	// apply it to the whole pipeline and checkpoint on expiry.
	Timeout time.Duration
	// CheckpointPath, when set, receives the serialized frontier of an
	// interrupted enumeration (deadline, cancellation or SIGINT).
	CheckpointPath string
	// ResumePath, when set, loads a checkpoint written earlier and
	// continues the walk from it.
	ResumePath string
}

// Register adds -timeout, -checkpoint and -resume to the default flag
// set; call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.DurationVar(&f.Timeout, "timeout", 0,
		"wall-clock budget (e.g. 30s, 5m); 0 = unlimited. Suite runs apply it per circuit and quarantine offenders; single runs checkpoint and exit")
	flag.StringVar(&f.CheckpointPath, "checkpoint", "",
		"write the resumable frontier of an interrupted run (timeout or ^C) to this file")
	flag.StringVar(&f.ResumePath, "resume", "",
		"resume an interrupted run from a checkpoint file written via -checkpoint")
	return f
}

// ProfileFlags is the shared -cpuprofile/-memprofile pair: every tool
// that hosts a hot loop (rdident's enumeration, pathcount's counting)
// registers it so a slow run can be profiled in place instead of being
// re-created inside a benchmark harness.
type ProfileFlags struct {
	// CPUProfile, when set, receives a pprof CPU profile covering the run.
	CPUProfile string
	// MemProfile, when set, receives a pprof heap profile taken at exit.
	MemProfile string
}

// RegisterProfile adds -cpuprofile and -memprofile to the default flag
// set; call before flag.Parse.
func RegisterProfile() *ProfileFlags {
	p := &ProfileFlags{}
	flag.StringVar(&p.CPUProfile, "cpuprofile", "",
		"write a pprof CPU profile of the run to this file")
	flag.StringVar(&p.MemProfile, "memprofile", "",
		"write a pprof heap profile to this file at exit")
	return p
}

// Start begins CPU profiling (when requested) and returns a stop
// function that ends it and writes the heap profile (when requested).
// Call immediately after flag.Parse and defer the stop. All status
// messages go to stderr — stdout is the tool's data channel and stays
// byte-identical with and without profiling (the golden tests assert
// exactly this).
func (p *ProfileFlags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if p.CPUProfile != "" {
		cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %v", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", p.CPUProfile)
		}
		if p.MemProfile != "" {
			f, err := os.Create(p.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize the retained heap before sampling
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", p.MemProfile)
		}
	}, nil
}

// forceExit is the second-signal escape hatch, swappable by tests (the
// real one never returns).
var forceExit = func(code int) { os.Exit(code) }

// SignalContext returns a context canceled by SIGINT/SIGTERM, so an
// interactive ^C lands in the same graceful-degradation path as a
// timeout: workers stop at the next branch, the frontier is checkpointed
// (when -checkpoint is set) and the tool exits cleanly.
//
// A second signal forces an immediate exit (status 130). This must not
// depend on the main goroutine making progress: the graceful path can
// wedge in the checkpoint write (full disk, dead NFS), and the old
// signal.NotifyContext plumbing stopped listening after the first
// signal, leaving ^C^C hanging with the run. The force-exit therefore
// runs on the watcher goroutine, unconditionally.
func (f *Flags) SignalContext() (context.Context, context.CancelFunc) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return signalContext(ch, func() { signal.Stop(ch) }, forceExit)
}

// signalContext is the testable core of SignalContext: first signal
// cancels the context (graceful drain), second signal calls exit(130)
// from the watcher goroutine regardless of what the main goroutine is
// blocked on. The returned CancelFunc releases the watcher and the
// signal registration; it is safe to call multiple times.
func signalContext(ch <-chan os.Signal, unregister func(), exit func(int)) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			unregister()
			close(done)
			cancel()
		})
	}
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "received %v: stopping gracefully (repeat to force exit)\n", sig)
		case <-done:
			return
		}
		cancel()
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "second %v: forcing immediate exit; a checkpoint being written may be incomplete\n", sig)
			exit(130)
		case <-done:
		}
	}()
	return ctx, stop
}

// Load reads the -resume checkpoint; it returns nil when the flag is
// unset.
func (f *Flags) Load() (*core.Checkpoint, error) {
	if f.ResumePath == "" {
		return nil, nil
	}
	cp, err := core.ReadCheckpointFile(f.ResumePath)
	if err != nil {
		return nil, fmt.Errorf("loading -resume checkpoint: %v", err)
	}
	return cp, nil
}

// Apply fills the resilience fields of an enumeration Options from the
// flags (loading the -resume checkpoint if any).
func (f *Flags) Apply(ctx context.Context, opt *core.Options) error {
	opt.Context = ctx
	opt.Deadline = f.Timeout
	cp, err := f.Load()
	if err != nil {
		return err
	}
	opt.Checkpoint = cp
	return nil
}

// HandleInterrupted deals with the aftermath of an interrupted
// enumeration result: it writes the checkpoint to -checkpoint (or tells
// the user how to get one) and prints what happened. It returns true
// when the result was in fact interrupted.
func (f *Flags) HandleInterrupted(tool string, res *core.Result) bool {
	if res == nil || !res.Status.Interrupted() {
		return false
	}
	why := "canceled"
	if res.Status == core.StatusDeadline {
		why = "time budget exhausted"
	}
	fmt.Fprintf(os.Stderr, "%s: %s after %d selected paths (%d frontier branches pending)\n",
		tool, why, res.Selected, res.Checkpoint.Pending())
	if f.CheckpointPath == "" {
		fmt.Fprintf(os.Stderr, "%s: rerun with -checkpoint FILE to save a resumable state\n", tool)
		return true
	}
	if err := core.WriteCheckpointFile(f.CheckpointPath, res.Checkpoint); err != nil {
		fmt.Fprintf(os.Stderr, "%s: writing checkpoint: %v\n", tool, err)
		return true
	}
	fmt.Fprintf(os.Stderr, "%s: checkpoint written to %s; resume with -resume %s\n",
		tool, f.CheckpointPath, f.CheckpointPath)
	return true
}

// WarnCheckpointUnused tells the user the checkpoint flags have no
// effect in this tool/mode (e.g. linear-time counting, or a keep-map
// that cannot soundly resume).
func (f *Flags) WarnCheckpointUnused(tool, why string) {
	if f.CheckpointPath != "" || f.ResumePath != "" {
		fmt.Fprintf(os.Stderr, "%s: -checkpoint/-resume have no effect here (%s)\n", tool, why)
	}
}

// IsGracefulStop reports whether err is an interruption rather than a
// real failure (deadline or cancellation, including ^C).
func IsGracefulStop(err error) bool {
	return errors.Is(err, core.ErrDeadline) || errors.Is(err, core.ErrCanceled) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
