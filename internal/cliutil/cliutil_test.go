package cliutil

import (
	"os"
	"syscall"
	"testing"
	"time"
)

// wedgedWrite simulates a checkpoint writer stuck in a blocked syscall:
// it blocks until released, like a write to a dead NFS mount.
type wedgedWrite struct{ release chan struct{} }

func (w *wedgedWrite) write() { <-w.release }

// TestSecondSignalForcesExitWhileCheckpointWedged is the regression test
// for the ^C^C hang: the first signal starts the graceful drain, the
// "main goroutine" wedges in the checkpoint write, and the second signal
// must still force an exit — from the watcher goroutine, without waiting
// on the wedged writer.
func TestSecondSignalForcesExitWhileCheckpointWedged(t *testing.T) {
	ch := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, stop := signalContext(ch, func() {}, func(code int) { exited <- code })
	defer stop()

	// First signal: graceful cancellation.
	ch <- os.Interrupt
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("first signal did not cancel the context")
	}

	// The tool reacts to cancellation by writing a checkpoint — which
	// wedges. (Run it on a goroutine standing in for main.)
	w := &wedgedWrite{release: make(chan struct{})}
	writerDone := make(chan struct{})
	go func() {
		w.write()
		close(writerDone)
	}()

	// Second signal: must force exit even though the writer is stuck.
	ch <- os.Interrupt
	select {
	case code := <-exited:
		if code != 130 {
			t.Fatalf("forced exit with status %d, want 130", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second signal did not force exit while the checkpoint write was wedged")
	}

	select {
	case <-writerDone:
		t.Fatal("writer unwedged itself — the test did not exercise the hang")
	default:
	}
	close(w.release)
	<-writerDone
}

// TestCancelFuncReleasesWatcher: stopping before any signal unregisters
// cleanly, and later "signals" are ignored (no exit, no panic).
func TestCancelFuncReleasesWatcher(t *testing.T) {
	ch := make(chan os.Signal, 2)
	unregistered := false
	exited := make(chan int, 1)
	ctx, stop := signalContext(ch, func() { unregistered = true }, func(code int) { exited <- code })
	stop()
	stop() // idempotent
	if !unregistered {
		t.Fatal("CancelFunc did not unregister the signal handler")
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("CancelFunc did not cancel the context")
	}
	select {
	case code := <-exited:
		t.Fatalf("exit(%d) called after stop", code)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestRealSignalCancels wires the real SignalContext to an actual SIGINT
// delivered to this process: the first signal must land in the graceful
// path (context canceled, process alive).
func TestRealSignalCancels(t *testing.T) {
	var f Flags
	ctx, stop := f.SignalContext()
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("real SIGINT did not cancel the context")
	}
}

// TestProfileFlags: the -cpuprofile/-memprofile plumbing — a no-op when
// unset, non-empty pprof files when set, and a clean error (not a
// crash) for an unwritable path.
func TestProfileFlags(t *testing.T) {
	t.Run("unset-is-noop", func(t *testing.T) {
		p := &ProfileFlags{}
		stop, err := p.Start()
		if err != nil {
			t.Fatal(err)
		}
		stop() // must not panic or write anything
	})
	t.Run("writes-profiles", func(t *testing.T) {
		dir := t.TempDir()
		p := &ProfileFlags{
			CPUProfile: dir + "/cpu.pprof",
			MemProfile: dir + "/mem.pprof",
		}
		stop, err := p.Start()
		if err != nil {
			t.Fatal(err)
		}
		// Burn a little CPU and heap so both profiles have samples to
		// record (an empty CPU profile is still a valid non-empty file).
		sink := 0
		buf := make([]byte, 1<<16)
		for i := range buf {
			sink += int(buf[i]) + i
		}
		_ = sink
		stop()
		for _, path := range []string{p.CPUProfile, p.MemProfile} {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatalf("profile missing: %v", err)
			}
			if fi.Size() == 0 {
				t.Fatalf("profile %s is empty", path)
			}
		}
	})
	t.Run("bad-path-errors", func(t *testing.T) {
		p := &ProfileFlags{CPUProfile: t.TempDir() + "/no/such/dir/cpu.pprof"}
		if _, err := p.Start(); err == nil {
			t.Fatal("unwritable -cpuprofile path must error")
		}
	})
}
