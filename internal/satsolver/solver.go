// Package satsolver provides a small conflict-driven (CDCL) SAT solver —
// watched literals, first-UIP learning, VSIDS-style activities, phase
// saving and geometric restarts — plus a Tseitin encoder for circuits.
//
// It is the exactness substrate of the library: the leaf-dag RD
// identification of Lam et al. [1] reduces to stuck-at redundancy checks,
// which are SAT calls on a miter, and the test generator uses it for
// exact sensitization checks that cross-validate the local-implication
// approximation.
package satsolver

import (
	"errors"
	"fmt"
)

// Lit is a literal: variable index shifted left once, low bit set for
// negated literals.
type Lit int32

// MkLit builds a literal for variable v (0-based); neg selects ¬v.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 != 0 }

// String renders the literal as "v3" or "~v3".
func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("~v%d", l.Var())
	}
	return fmt.Sprintf("v%d", l.Var())
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

type clause struct {
	lits    []Lit
	learned bool
	act     float64
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
// A Solver is not safe for concurrent use.
type Solver struct {
	clauses []*clause
	learnts []*clause
	watches [][]*clause // literal index -> watching clauses

	assign   []lbool
	level    []int32
	reason   []*clause
	activity []float64
	polarity []bool // saved phase
	order    *varHeap

	trail    []Lit
	trailLim []int
	propHead int

	varInc    float64
	claInc    float64
	model     []bool
	okay      bool // false once an empty clause was added
	conflicts int64
	decisions int64
	props     int64

	seen    []bool
	analyze []Lit
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1, okay: true}
	s.order = newVarHeap(&s.activity)
	return s
}

// NewVar introduces a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// Stats returns (conflicts, decisions, propagations).
func (s *Solver) Stats() (int64, int64, int64) {
	return s.conflicts, s.decisions, s.props
}

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over existing variables. It returns an error if
// a literal references an unknown variable. Adding the empty clause (or a
// clause false under unit propagation at level 0) makes the formula
// trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) error {
	if !s.okay {
		return nil
	}
	if s.decisionLevel() != 0 {
		return errors.New("satsolver: AddClause above decision level 0")
	}
	// Normalize: drop duplicate and false literals, detect tautologies.
	norm := make([]Lit, 0, len(lits))
	seen := map[Lit]bool{}
	for _, l := range lits {
		if l.Var() < 0 || l.Var() >= s.NumVars() {
			return fmt.Errorf("satsolver: literal %v references unknown variable", l)
		}
		switch s.value(l) {
		case lTrue:
			return nil // satisfied at level 0
		case lFalse:
			continue
		}
		if seen[l.Neg()] {
			return nil // tautology
		}
		if !seen[l] {
			seen[l] = true
			norm = append(norm, l)
		}
	}
	switch len(norm) {
	case 0:
		s.okay = false
		return nil
	case 1:
		s.uncheckedEnqueue(norm[0], nil)
		if s.propagate() != nil {
			s.okay = false
		}
		return nil
	}
	c := &clause{lits: norm}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return nil
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].Neg()] = append(s.watches[c.lits[0].Neg()], c)
	s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], c)
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assign[v] = boolToLbool(!l.Sign())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.propHead < len(s.trail) {
		p := s.trail[s.propHead]
		s.propHead++
		s.props++
		ws := s.watches[p]
		n := 0
	nextClause:
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure lits[1] is the false literal (p.Neg()).
			if c.lits[0] == p.Neg() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If the first watch is true, the clause is satisfied.
			if s.value(c.lits[0]) == lTrue {
				ws[n] = c
				n++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], c)
					continue nextClause
				}
			}
			// Clause is unit or conflicting.
			ws[n] = c
			n++
			if s.value(c.lits[0]) == lFalse {
				// Conflict: keep remaining watchers.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.propHead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(c.lits[0], c)
		}
		s.watches[p] = ws[:n]
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

// analyzeConflict derives a 1-UIP learned clause and the backtrack level.
func (s *Solver) analyzeConflict(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if int(s.level[v]) == s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find next literal to expand.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()

	// Compute backtrack level: max level among learnt[1:].
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = int(s.level[learnt[1].Var()])
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, bt
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.order.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.propHead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	for s.order.len() > 0 {
		v := s.order.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// Solve determines satisfiability under the given assumption literals. It
// returns true and exposes a model via Model/ValueOf, or false if the
// formula is unsatisfiable under the assumptions. Solve may be called
// repeatedly with different assumptions; learned clauses persist.
func (s *Solver) Solve(assumptions ...Lit) bool {
	if !s.okay {
		return false
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.okay = false
		return false
	}

	restartLimit := int64(100)
	conflictsAtStart := s.conflicts

	for {
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			if s.decisionLevel() == 0 {
				s.okay = false
				return false
			}
			if s.decisionLevel() <= len(assumptions) {
				// Conflict within assumption levels: unsat under them.
				s.cancelUntil(0)
				return false
			}
			learnt, bt := s.analyzeConflict(confl)
			if bt < len(assumptions) {
				bt = len(assumptions)
				// Clause may still be asserting below; simplest safe
				// behaviour: backtrack to assumption boundary and only
				// enqueue when the clause is unit there.
			}
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				s.cancelUntil(0)
				s.uncheckedEnqueue(learnt[0], nil)
				if s.propagate() != nil {
					s.okay = false
					return false
				}
				// Re-establish assumptions on the next iterations.
				continue
			}
			c := &clause{lits: learnt, learned: true}
			s.learnts = append(s.learnts, c)
			s.watch(c)
			if s.value(c.lits[0]) == lUndef {
				s.uncheckedEnqueue(c.lits[0], c)
			}
			s.varInc /= 0.95
			if s.conflicts-conflictsAtStart > restartLimit {
				restartLimit = restartLimit * 3 / 2
				s.cancelUntil(0)
			}
			continue
		}

		// No conflict: extend assignment.
		if s.decisionLevel() < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
				continue
			case lFalse:
				s.cancelUntil(0)
				return false
			default:
				s.decisions++
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(p, nil)
				continue
			}
		}
		v := s.pickBranchVar()
		if v == -1 {
			// All variables assigned: snapshot the model and release the
			// trail so clauses can be added and Solve re-run.
			if cap(s.model) < s.NumVars() {
				s.model = make([]bool, s.NumVars())
			}
			s.model = s.model[:s.NumVars()]
			for i := range s.model {
				s.model[i] = s.assign[i] == lTrue
			}
			s.cancelUntil(0)
			return true
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(MkLit(v, !s.polarity[v]), nil)
	}
}

// ValueOf returns the model value of variable v after a successful Solve.
// It is only meaningful when the last Solve returned true.
func (s *Solver) ValueOf(v int) bool { return s.model[v] }

// Model returns a copy of the model found by the last successful Solve.
func (s *Solver) Model() []bool {
	return append([]bool(nil), s.model...)
}

// varHeap is a max-heap on variable activity.
type varHeap struct {
	act   *[]float64
	heap  []int
	index []int // var -> heap position, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap { return &varHeap{act: act} }

func (h *varHeap) len() int { return len(h.heap) }

func (h *varHeap) less(a, b int) bool { return (*h.act)[h.heap[a]] > (*h.act)[h.heap[b]] }

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.index[h.heap[a]] = a
	h.index[h.heap[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) push(v int) {
	for len(h.index) <= v {
		h.index = append(h.index, -1)
	}
	if h.index[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.index[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.index[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if h.index[v] >= 0 {
		h.up(h.index[v])
	}
}
