package satsolver

import (
	"math/rand"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
)

func TestLitBasics(t *testing.T) {
	p := MkLit(3, false)
	n := MkLit(3, true)
	if p.Var() != 3 || n.Var() != 3 {
		t.Fatal("Var")
	}
	if p.Sign() || !n.Sign() {
		t.Fatal("Sign")
	}
	if p.Neg() != n || n.Neg() != p {
		t.Fatal("Neg")
	}
	if p.String() != "v3" || n.String() != "~v3" {
		t.Fatalf("String: %s %s", p, n)
	}
}

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.Solve() {
		t.Fatal("empty formula unsat")
	}
	if err := s.AddClause(MkLit(a, false)); err != nil {
		t.Fatal(err)
	}
	if !s.Solve() {
		t.Fatal("unit formula unsat")
	}
	if !s.ValueOf(a) {
		t.Fatal("unit not respected")
	}
	if err := s.AddClause(MkLit(a, true)); err != nil {
		t.Fatal(err)
	}
	if s.Solve() {
		t.Fatal("a AND ~a is sat")
	}
	// Solver stays unsat.
	if s.Solve() {
		t.Fatal("solver recovered from empty clause")
	}
}

func TestEmptyClause(t *testing.T) {
	s := New()
	s.NewVar()
	if err := s.AddClause(); err != nil {
		t.Fatal(err)
	}
	if s.Solve() {
		t.Fatal("empty clause is sat")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	if err := s.AddClause(MkLit(a, false), MkLit(a, true)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClause(MkLit(b, false), MkLit(b, false), MkLit(a, false)); err != nil {
		t.Fatal(err)
	}
	if !s.Solve() {
		t.Fatal("unsat")
	}
}

func TestUnknownVariable(t *testing.T) {
	s := New()
	if err := s.AddClause(MkLit(5, false)); err == nil {
		t.Fatal("expected error for unknown variable")
	}
}

func TestXorChainSAT(t *testing.T) {
	// x1 xor x2 xor x3 = 1 encoded clausally; satisfiable.
	s := New()
	v := []int{s.NewVar(), s.NewVar(), s.NewVar()}
	// Odd parity clauses.
	add := func(a, b, c bool) {
		s.AddClause(MkLit(v[0], a), MkLit(v[1], b), MkLit(v[2], c))
	}
	add(false, false, false)
	add(false, true, true)
	add(true, false, true)
	add(true, true, false)
	if !s.Solve() {
		t.Fatal("parity formula unsat")
	}
	m := s.Model()
	if (m[0] != m[1]) != m[2] == false {
		// parity(m) must be odd
		if !(m[0] != m[1] != m[2]) {
			t.Fatalf("model %v has even parity", m)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons in 3 holes — classic small UNSAT instance that
	// requires real conflict analysis.
	s := New()
	const P, H = 4, 3
	v := [P][H]int{}
	for p := 0; p < P; p++ {
		for h := 0; h < H; h++ {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < P; p++ {
		lits := []Lit{}
		for h := 0; h < H; h++ {
			lits = append(lits, MkLit(v[p][h], false))
		}
		s.AddClause(lits...)
	}
	for h := 0; h < H; h++ {
		for p1 := 0; p1 < P; p1++ {
			for p2 := p1 + 1; p2 < P; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
	if s.Solve() {
		t.Fatal("PHP(4,3) reported satisfiable")
	}
	conflicts, decisions, props := s.Stats()
	if conflicts == 0 || decisions == 0 || props == 0 {
		t.Errorf("stats look wrong: %d %d %d", conflicts, decisions, props)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, false)) // a -> b
	if !s.Solve(MkLit(a, false)) {
		t.Fatal("sat under a")
	}
	if !s.ValueOf(b) {
		t.Fatal("a assumed but b false")
	}
	if !s.Solve(MkLit(a, false), MkLit(b, false)) {
		t.Fatal("sat under a,b")
	}
	if s.Solve(MkLit(a, false), MkLit(b, true)) {
		t.Fatal("a & ~b should be unsat")
	}
	// Solver reusable after assumption-unsat.
	if !s.Solve() {
		t.Fatal("solver unusable after assumption conflict")
	}
	// Contradictory assumptions.
	if s.Solve(MkLit(a, false), MkLit(a, true)) {
		t.Fatal("contradictory assumptions sat")
	}
}

// TestRandom3SATAgainstBruteForce cross-checks the solver against
// exhaustive enumeration on many random formulas.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for inst := 0; inst < 300; inst++ {
		nv := 4 + rng.Intn(6)
		nc := 3 + rng.Intn(30)
		type cls []int // positive/negative var encoding: +v+1 / -(v+1)
		formula := make([]cls, nc)
		for i := range formula {
			k := 1 + rng.Intn(3)
			c := make(cls, k)
			for j := range c {
				v := rng.Intn(nv) + 1
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
			}
			formula[i] = c
		}
		// Brute force.
		bruteSat := false
		for m := 0; m < 1<<nv && !bruteSat; m++ {
			ok := true
			for _, c := range formula {
				cok := false
				for _, l := range c {
					v := l
					if v < 0 {
						v = -v
					}
					val := m&(1<<(v-1)) != 0
					if (l > 0) == val {
						cok = true
						break
					}
				}
				if !cok {
					ok = false
					break
				}
			}
			bruteSat = ok
		}
		// Solver.
		s := New()
		vars := make([]int, nv)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		for _, c := range formula {
			lits := make([]Lit, len(c))
			for j, l := range c {
				if l > 0 {
					lits[j] = MkLit(vars[l-1], false)
				} else {
					lits[j] = MkLit(vars[-l-1], true)
				}
			}
			s.AddClause(lits...)
		}
		got := s.Solve()
		if got != bruteSat {
			t.Fatalf("instance %d: solver=%v brute=%v formula=%v", inst, got, bruteSat, formula)
		}
		if got {
			// Verify the model satisfies the formula.
			m := s.Model()
			for _, c := range formula {
				ok := false
				for _, l := range c {
					v := l
					if v < 0 {
						v = -v
					}
					if (l > 0) == m[vars[v-1]] {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("instance %d: model does not satisfy clause %v", inst, c)
				}
			}
		}
	}
}

// TestCircuitEncoding checks Tseitin consistency: under input assumptions
// the model reproduces circuit simulation for every gate.
func TestCircuitEncoding(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 20, Outputs: 2}, seed)
		s := New()
		cv := AddCircuit(s, c)
		n := len(c.Inputs())
		for v := 0; v < 1<<n; v++ {
			in := make([]bool, n)
			assumptions := make([]Lit, n)
			for i, pi := range c.Inputs() {
				in[i] = v&(1<<i) != 0
				assumptions[i] = cv.Lit(pi, in[i])
			}
			if !s.Solve(assumptions...) {
				t.Fatalf("seed %d v=%d: consistent circuit unsat", seed, v)
			}
			want := c.EvalBool(in)
			for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
				if s.ValueOf(cv.Var[g]) != want[g] {
					t.Fatalf("seed %d v=%d: gate %q model %v, sim %v",
						seed, v, c.Gate(g).Name, s.ValueOf(cv.Var[g]), want[g])
				}
			}
		}
	}
}

// TestMiterEquivalence: two structurally different but functionally equal
// circuits produce an UNSAT miter; a differing pair produces SAT.
func TestMiterEquivalence(t *testing.T) {
	// c1: y = a AND b; c2: y = NOT(NAND(a,b)).
	b1 := circuit.NewBuilder("c1")
	a1 := b1.Input("a")
	x1 := b1.Input("b")
	g1 := b1.Gate(circuit.And, "g", a1, x1)
	b1.Output("y", g1)
	c1 := b1.MustBuild()

	b2 := circuit.NewBuilder("c2")
	a2 := b2.Input("a")
	x2 := b2.Input("b")
	n2 := b2.Gate(circuit.Nand, "n", a2, x2)
	g2 := b2.Gate(circuit.Not, "g", n2)
	b2.Output("y", g2)
	c2 := b2.MustBuild()

	s := New()
	v1 := AddCircuit(s, c1)
	v2 := AddCircuit(s, c2)
	// Tie inputs together.
	for i := range c1.Inputs() {
		p1, p2 := v1.Var[c1.Inputs()[i]], v2.Var[c2.Inputs()[i]]
		s.AddClause(MkLit(p1, true), MkLit(p2, false))
		s.AddClause(MkLit(p1, false), MkLit(p2, true))
	}
	// Miter: outputs differ — xor via 4 clauses on a fresh variable d=1.
	o1, o2 := v1.Var[c1.Outputs()[0]], v2.Var[c2.Outputs()[0]]
	d := s.NewVar()
	s.AddClause(MkLit(d, true), MkLit(o1, false), MkLit(o2, false))
	s.AddClause(MkLit(d, true), MkLit(o1, true), MkLit(o2, true))
	s.AddClause(MkLit(d, false))
	if s.Solve() {
		t.Fatal("equivalent circuits: miter satisfiable")
	}
}

func BenchmarkSolverCircuitQueries(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 32, Gates: 600, Outputs: 8}, 11)
	s := New()
	cv := AddCircuit(s, c)
	po := c.Outputs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(cv.Lit(po, i%2 == 0))
	}
}
