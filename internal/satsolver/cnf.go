package satsolver

import (
	"rdfault/internal/circuit"
)

// CircuitVars maps each gate of an encoded circuit to its CNF variable.
type CircuitVars struct {
	Var []int // indexed by GateID
}

// Lit returns the literal asserting gate g has value v.
func (cv CircuitVars) Lit(g circuit.GateID, v bool) Lit {
	return MkLit(cv.Var[g], !v)
}

// AddCircuit Tseitin-encodes c into s: one variable per gate, with
// consistency clauses tying every gate variable to its fanins. PO marker
// gates are encoded as equalities with their driver.
func AddCircuit(s *Solver, c *circuit.Circuit) CircuitVars {
	cv := CircuitVars{Var: make([]int, c.NumGates())}
	for g := range cv.Var {
		cv.Var[g] = s.NewVar()
	}
	for _, g := range c.TopoOrder() {
		t := c.Type(g)
		y := cv.Var[g]
		fanin := c.Fanin(g)
		switch t {
		case circuit.Input:
			// Free variable.
		case circuit.Output, circuit.Buf:
			x := cv.Var[fanin[0]]
			mustAdd(s, MkLit(y, true), MkLit(x, false))
			mustAdd(s, MkLit(y, false), MkLit(x, true))
		case circuit.Not:
			x := cv.Var[fanin[0]]
			mustAdd(s, MkLit(y, true), MkLit(x, true))
			mustAdd(s, MkLit(y, false), MkLit(x, false))
		case circuit.And, circuit.Nand, circuit.Or, circuit.Nor:
			// Treat all four via the controlling value: let cv be the
			// controlling input value and ov the output when controlled.
			ctrl, _ := t.Controlling()
			outWhenCtrl := ctrl != t.Inverting() // ctrl XOR inverting
			// Clause set: for each input i: (y = outWhenCtrl) OR (x_i !=
			// ctrl), i.e. x_i = ctrl -> y = outWhenCtrl.
			big := make([]Lit, 0, len(fanin)+1)
			for _, f := range fanin {
				x := cv.Var[f]
				mustAdd(s, MkLit(y, !outWhenCtrl), MkLit(x, ctrl))
				big = append(big, MkLit(x, !ctrl))
			}
			// All inputs non-controlling -> y = NOT outWhenCtrl.
			big = append(big, MkLit(y, outWhenCtrl))
			mustAdd(s, big...)
		}
	}
	return cv
}

func mustAdd(s *Solver, lits ...Lit) {
	if err := s.AddClause(lits...); err != nil {
		panic(err) // variables are created in this package; cannot happen
	}
}
