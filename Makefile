# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench bench-identify bench-compare race chaos chaos-fleet chaos-coord metrics-smoke eco-smoke fuzz crosscheck cover suite clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages (work-stealing
# enumeration, the implication engine it snapshots, the shared analysis
# manager, the two-pattern test generator, and the oracle/differential
# harness that drives parallel fast passes).
race:
	$(GO) test -race ./internal/core ./internal/logic ./internal/analysis \
		./internal/tgen ./internal/oracle ./internal/oracle/diff \
		./internal/serve ./internal/faultinject ./internal/cliutil \
		./internal/fleet ./internal/fleet/journal ./internal/retry \
		./internal/telemetry ./internal/store

# The deterministic fault-injection suite under the race detector:
# admission failures, worker panics, budget evictions mid-run, spill
# corruption, clock skew — every injected fault must map to a typed
# error or a correctly-labeled degraded tier, never a wrong answer.
chaos:
	$(GO) test -race -count=1 ./internal/faultinject ./internal/serve \
		./internal/cliutil ./internal/store -run 'Test'

# The killed-node chaos suite: worker kills, dropped dispatches,
# corrupted responses, zombie replies and checkpoint migration injected
# into the fleet coordinator, with merged counters required to stay
# bit-identical to a single-process run under every schedule.
chaos-fleet:
	$(GO) test -race -count=1 ./internal/fleet ./internal/retry -run 'Test'

# The coordinator-kill chaos suite: the coordinator itself is killed at
# every phase boundary (pre-sort, mid-dispatch, mid-merge, pre-seal),
# recovered by restart or hot-standby promotion at 2 and 4 workers, with
# merged counters required to stay bit-identical, every answer merged
# exactly once (journaled lease audit), zombie primaries fenced typed,
# and injected journal corruption degrading to a correct recompute.
chaos-coord:
	$(GO) test -race -count=1 ./internal/fleet \
		-run 'TestChaosCoord|TestResume|TestZombieCoordinator|TestJournalAppend'

# The observability contract, end to end: metric counters must agree
# with the structured event log one-for-one (submissions, sheds, budget
# evictions), the event stream must be byte-deterministic under the
# frozen faultinject clock, a fleet chaos run's quarantine/dead counters
# must match its JSONL stream, and a surviving worker's /metrics page
# must account for the cone slices actually served.
metrics-smoke:
	$(GO) test -race -count=1 ./internal/telemetry
	$(GO) test -race -count=1 ./internal/serve \
		-run 'TestMetricsEventConsistency|TestEventLogByteDeterministic|TestStream'
	$(GO) test -race -count=1 ./internal/fleet \
		-run 'TestChaosTelemetryStreamMatchesEventsAndStats'

# The ECO-workload gate: the content-addressed result store must serve
# a repeat submission of every suite circuit as a pure hit with counters
# bit-identical to the cold run and zero enumeration work, k-of-n-cone
# edits as deltas that re-enumerate only the changed cones, survive a
# process restart, and degrade corrupt/unreadable entries to correct
# recomputation — through the direct, serving and fleet paths alike.
eco-smoke:
	$(GO) test -race -count=1 ./internal/store \
		-run 'TestECO|TestStoreSurvivesRestart|TestStoreMatchesWholeCircuitRun'
	$(GO) test -race -count=1 ./internal/serve -run 'TestServeStore|TestServeNoStore'
	$(GO) test -race -count=1 ./internal/fleet -run 'TestFleetStore|TestFleetReuses|TestFleetECO'

# Cached-vs-uncached identification pipeline; writes BENCH_identify.json
# and fails if the analysis manager is not strictly faster and
# lower-allocating than the recompute-everywhere baseline.
bench-identify:
	$(GO) test -run '^$$' -bench BenchmarkIdentifyCached -benchtime 1x -timeout 30m .

# Perf-regression gate: regenerate the identification artifact and fail
# if any circuit's speedup or paths/sec throughput regressed beyond
# tolerance against the committed baseline (readable in any artifact
# version, including the pre-envelope format). The committed file is
# stashed first because bench-identify overwrites it in place.
bench-compare:
	cp BENCH_identify.json BENCH_identify.baseline.json
	$(MAKE) bench-identify; status=$$?; \
	if [ $$status -eq 0 ]; then \
		$(GO) run ./cmd/benchcompare -baseline BENCH_identify.baseline.json -current BENCH_identify.json; \
		status=$$?; \
	fi; \
	rm -f BENCH_identify.baseline.json; exit $$status

# Regenerates every table and figure of the paper (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem -timeout 30m .

# Short fuzz pass over the three netlist parsers and the differential
# oracle harness.
fuzz:
	$(GO) test ./internal/circuit -run=NONE -fuzz FuzzParseBench -fuzztime 30s
	$(GO) test ./internal/store -run=NONE -fuzz FuzzECODelta -fuzztime 30s
	$(GO) test ./internal/fleet/journal -run=NONE -fuzz FuzzJournalReplay -fuzztime 30s
	$(GO) test ./internal/verilog -run=NONE -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/pla -run=NONE -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/oracle/diff -run=NONE -fuzz FuzzCrossCheck -fuzztime 30s
	$(GO) test ./internal/logic -run=NONE -fuzz FuzzEngineDiff -fuzztime 30s

# The seeded differential sweep: 64 random circuits through the fast
# identifier and the exact oracle, checking soundness, Lemma 1
# containment and metamorphic stability, and requiring at least one seed
# with a nonzero approximation gap (exit 1 otherwise).
crosscheck:
	$(GO) run ./cmd/crosscheck -seeds 64

cover:
	$(GO) test -cover ./...

# Materialize the generated benchmark suites.
suite:
	$(GO) run ./cmd/benchgen -out benchmarks -verilog -multiplier

clean:
	rm -rf benchmarks out.vcd BENCH_enumerate.json BENCH_identify.json
