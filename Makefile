# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench bench-identify race fuzz cover suite clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages (work-stealing
# enumeration, the implication engine it snapshots, and the shared
# analysis manager).
race:
	$(GO) test -race ./internal/core ./internal/logic ./internal/analysis

# Cached-vs-uncached identification pipeline; writes BENCH_identify.json
# and fails if the analysis manager is not strictly faster and
# lower-allocating than the recompute-everywhere baseline.
bench-identify:
	$(GO) test -run '^$$' -bench BenchmarkIdentifyCached -benchtime 1x -timeout 30m .

# Regenerates every table and figure of the paper (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem -timeout 30m .

# Short fuzz pass over the three netlist parsers.
fuzz:
	$(GO) test ./internal/circuit -run=NONE -fuzz FuzzParseBench -fuzztime 30s
	$(GO) test ./internal/verilog -run=NONE -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/pla -run=NONE -fuzz FuzzParse -fuzztime 30s

cover:
	$(GO) test -cover ./...

# Materialize the generated benchmark suites.
suite:
	$(GO) run ./cmd/benchgen -out benchmarks -verilog -multiplier

clean:
	rm -rf benchmarks out.vcd BENCH_enumerate.json BENCH_identify.json
