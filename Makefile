# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench race fuzz cover suite clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages (work-stealing
# enumeration and the implication engine it snapshots).
race:
	$(GO) test -race ./internal/core ./internal/logic

# Regenerates every table and figure of the paper (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem -timeout 30m .

# Short fuzz pass over the three netlist parsers.
fuzz:
	$(GO) test ./internal/circuit -run=NONE -fuzz FuzzParseBench -fuzztime 30s
	$(GO) test ./internal/verilog -run=NONE -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/pla -run=NONE -fuzz FuzzParse -fuzztime 30s

cover:
	$(GO) test -cover ./...

# Materialize the generated benchmark suites.
suite:
	$(GO) run ./cmd/benchgen -out benchmarks -verilog -multiplier

clean:
	rm -rf benchmarks out.vcd
