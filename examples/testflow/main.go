// Testflow demonstrates the end-to-end delay-testing flow RD
// identification enables, on a generated ALU:
//
//	RD identification -> path selection -> robust ATPG with fault
//	dropping -> coverage accounting -> DFT proposals.
//
// It also shows the headline saving: how many fewer paths the selection
// keeps because of the RD filter, exactly the adaptation Section VI
// describes.
package main

import (
	"fmt"
	"log"

	"rdfault"
	"rdfault/internal/gen"
)

func main() {
	c := gen.ALUComparator(6, gen.XorNAND)
	d := rdfault.UnitDelays(c)
	fmt.Printf("circuit: %s\n", c.Stats())
	fmt.Printf("logical paths: %v\n\n", rdfault.CountPaths(c))

	// Selection with and without the RD filter.
	with, err := rdfault.NewSelector(c, d, rdfault.SelectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	without, err := rdfault.NewSelector(c, d, rdfault.SelectOptions{NoRDFilter: true})
	if err != nil {
		log.Fatal(err)
	}
	threshold := with.Analysis().CriticalDelay() * 0.6
	selWith := with.ByThreshold(threshold, rdfault.SelectOptions{})
	selWithout := without.ByThreshold(threshold, rdfault.SelectOptions{})
	fmt.Printf("paths slower than %.1f (60%% of critical %.1f):\n",
		threshold, with.Analysis().CriticalDelay())
	fmt.Printf("  without RD identification: %d paths to test\n", len(selWithout.Selected))
	fmt.Printf("  with    RD identification: %d paths to test (%d proved robust dependent)\n\n",
		len(selWith.Selected), selWith.SkippedRD)

	// Compact robust test set for the RD-filtered selection.
	gn := rdfault.NewGenerator(c)
	tests, cov := rdfault.CompactTests(c, selWith.Selected, gn,
		rdfault.CompactOptions{AllowNonRobust: true})
	fmt.Printf("ATPG with fault dropping: %d tests cover %d/%d targets (%.2f%%; %d robust, %d non-robust)\n",
		cov.Tests, cov.Detected(), cov.Targets, cov.Percent(), cov.RobustDetected, cov.NonRobustDetected)

	// Validate the set with independent fault simulation.
	sim := rdfault.NewFaultSimulator(c)
	robustDetected := map[string]bool{}
	for _, tt := range tests {
		for _, lp := range sim.Detects(tt).Robust {
			robustDetected[lp.Key()] = true
		}
	}
	verify := 0
	for _, lp := range selWith.Selected {
		if robustDetected[lp.Key()] {
			verify++
		}
	}
	fmt.Printf("fault simulation confirms %d robustly detected targets\n\n", verify)

	// DFT for what remains.
	var untestable []rdfault.Logical
	for _, lp := range selWith.Selected {
		if !robustDetected[lp.Key()] && gn.Classify(lp) == rdfault.FuncSensitizable {
			untestable = append(untestable, lp)
		}
	}
	if len(untestable) == 0 {
		fmt.Println("every remaining target is at least non-robustly testable; no DFT needed")
		return
	}
	props := rdfault.ProposeControlPoints(c, untestable)
	fmt.Printf("%d targets are functionally sensitizable only; %d control points proposed\n",
		len(untestable), len(props))
	mod, err := rdfault.InsertControlPoints(c, props)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after insertion: %s (function preserved with test inputs at 0)\n", mod.Stats())
}
