// Multiplier demonstrates the scale regime that motivates the paper:
// array multipliers, whose path counts explode combinatorially (the
// original c6288 has more than 1.9e20 logical paths, which is why the
// paper's Table I excludes it and why the unfolding approach of [1] is
// hopeless there).
//
// The program counts paths exactly for growing multipliers (linear-time,
// arbitrary precision), runs full RD identification where enumeration is
// feasible, and shows the incomplete-run behaviour beyond that.
package main

import (
	"fmt"
	"log"
	"time"

	"rdfault"
	"rdfault/internal/gen"
)

func main() {
	fmt.Println("exact path counting (always feasible):")
	for _, n := range []int{2, 4, 6, 8, 12, 16} {
		c := gen.ArrayMultiplier(n, gen.XorNAND)
		fmt.Printf("  %2dx%-2d multiplier: %6d gates, %v logical paths\n",
			n, n, c.NumGates(), rdfault.CountPaths(c))
	}

	fmt.Println("\nRD identification (feasible while enumeration fits the budget):")
	for _, n := range []int{2, 3, 4, 5} {
		c := gen.ArrayMultiplier(n, gen.XorNAND)
		t0 := time.Now()
		rep, err := rdfault.Identify(c, rdfault.Heuristic1, rdfault.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %dx%d: RD %6.2f%% of %v paths in %v\n",
			n, n, rep.RDPercent(), rep.TotalLogicalPaths, time.Since(t0).Round(time.Millisecond))
	}

	// Beyond the budget, Options.Limit turns the run into an explicit
	// incomplete result instead of an open-ended computation — the
	// library's version of the paper's "run could not be completed".
	c := gen.ArrayMultiplier(8, gen.XorNAND)
	rep, err := rdfault.Identify(c, rdfault.Heuristic1, rdfault.Options{Limit: 200000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n8x8 with a 200k-path budget: complete=%v after %d selected paths (of %v total)\n",
		rep.Complete, rep.Selected, rep.TotalLogicalPaths)
	fmt.Println("(c6288-class circuits are handled by path selection strategies on top")
	fmt.Println(" of RD identification, as Section VI of the paper discusses.)")
}
