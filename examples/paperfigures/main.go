// Paperfigures reproduces Figures 1-5 and Examples 1-4 of the paper on
// the reconstructed running example circuit y = OR(a, AND(b, OR(b, c))):
// the three stabilizing systems for input 111, the 6-path and 5-path
// complete stabilizing assignments, the test-class hierarchy of Figure 3,
// and the optimal input sort of Figure 5.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rdfault/internal/circuit"
	"rdfault/internal/exp"
	"rdfault/internal/gen"
	"rdfault/internal/stabilize"
)

func main() {
	dotDir := flag.String("dot", "", "also write GraphViz drawings of the Figure 1 stabilizing systems to this directory")
	flag.Parse()
	if _, err := exp.RunFigures(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *dotDir == "" {
		return
	}
	if err := os.MkdirAll(*dotDir, 0o755); err != nil {
		log.Fatal(err)
	}
	c := gen.PaperExample()
	for i, s := range stabilize.AllSystems(c, []bool{true, true, true}) {
		highlight := map[circuit.Lead]bool{}
		for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
			for pin := range c.Fanin(g) {
				if s.HasLead(g, pin) {
					highlight[circuit.Lead{To: g, Pin: pin}] = true
				}
			}
		}
		path := filepath.Join(*dotDir, fmt.Sprintf("figure1_system%d.dot", i+1))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := circuit.WriteDot(f, c, highlight); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}
