// Coverage walks through Example 3 of the paper on a realistic circuit:
// choosing the stabilizing assignment well maximizes the achievable fault
// coverage and minimizes design-for-testability (DFT) work.
//
// For a generated ALU, the program selects the to-be-tested path set
// LP^sup(σ^π) under three input sorts (Heuristic 2, pin order, inverse),
// classifies every selected path with the two-pattern test generator, and
// reports coverage plus the untestable paths a DFT pass would have to
// address.
package main

import (
	"fmt"
	"log"

	"rdfault"
	"rdfault/internal/gen"
)

func main() {
	c := gen.ALU(4, gen.XorNAND)
	fmt.Printf("circuit: %s\n", c.Stats())
	fmt.Printf("logical paths: %v\n\n", rdfault.CountPaths(c))

	h2, _, _, err := rdfault.Heuristic2Sort(c)
	if err != nil {
		log.Fatal(err)
	}
	pin := rdfault.PinOrderSort(c)
	inv := h2.Inverse()

	for _, cfg := range []struct {
		name string
		sort rdfault.InputSort
	}{
		{"Heuristic 2", h2},
		{"pin order", pin},
		{"inverse (bad)", inv},
	} {
		var selected []rdfault.Logical
		res, err := rdfault.Enumerate(c, rdfault.SigmaPi, rdfault.Options{
			Sort: &cfg.sort,
			OnPath: func(lp rdfault.Logical) {
				selected = append(selected, rdfault.Logical{
					Path: lp.Path.Clone(), FinalOne: lp.FinalOne,
				})
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		gn := rdfault.NewGenerator(c)
		testable, untestable := 0, 0
		var dftExamples []string
		for _, lp := range selected {
			if gn.Classify(lp) >= rdfault.NonRobustClass {
				testable++
			} else {
				untestable++
				if len(dftExamples) < 3 {
					dftExamples = append(dftExamples, lp.Path.String(c))
				}
			}
		}
		cov := 100.0
		if len(selected) > 0 {
			cov = 100 * float64(testable) / float64(len(selected))
		}
		fmt.Printf("%-14s selects %5d paths (RD %6.2f%%): coverage %6.2f%%, %d paths need DFT\n",
			cfg.name, len(selected), res.RDPercent(), cov, untestable)
		for _, s := range dftExamples {
			fmt.Printf("               DFT candidate: %s\n", s)
		}
	}
	fmt.Println("\nA better assignment selects fewer paths AND a larger share of them is")
	fmt.Println("testable — exactly the twofold effect Example 3 describes.")
}
