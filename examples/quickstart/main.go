// Quickstart: build a circuit, count its logical paths, and identify the
// robust dependent ones — the paths that never need a delay test.
package main

import (
	"fmt"
	"log"
	"strings"

	"rdfault"
)

// A small carry-select-style netlist in .bench format.
const netlist = `
INPUT(a0)
INPUT(a1)
INPUT(b0)
INPUT(b1)
INPUT(cin)
OUTPUT(s0)
OUTPUT(s1)
OUTPUT(cout)
x0   = XOR(a0, b0)
s0   = XOR(x0, cin)
c0a  = AND(a0, b0)
c0b  = AND(x0, cin)
c0   = OR(c0a, c0b)
x1   = XOR(a1, b1)
s1   = XOR(x1, c0)
c1a  = AND(a1, b1)
c1b  = AND(x1, c0)
cout = OR(c1a, c1b)
`

func main() {
	c, err := rdfault.ParseBench("adder2", strings.NewReader(netlist))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %s\n", c.Stats())
	fmt.Printf("logical paths: %v\n\n", rdfault.CountPaths(c))

	// Identify robust dependent paths with each heuristic of the paper.
	for _, h := range []rdfault.Heuristic{
		rdfault.HeuristicFUS, rdfault.Heuristic1, rdfault.Heuristic2,
	} {
		rep, err := rdfault.Identify(c, h, rdfault.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s RD = %4v of %v logical paths (%.2f%%) — only %d paths need delay tests\n",
			h, rep.RD, rep.TotalLogicalPaths, rep.RDPercent(), rep.Selected)
	}

	// The identified set is sound: testing just the non-RD paths verifies
	// the clock period for every manufactured instance (Theorem 1). Show
	// the surviving paths for Heuristic 2.
	fmt.Println("\npaths that remain to be tested (Heuristic 2):")
	sort2, _, _, err := rdfault.Heuristic2Sort(c)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	_, err = rdfault.Enumerate(c, rdfault.SigmaPi, rdfault.Options{
		Sort: &sort2,
		OnPath: func(lp rdfault.Logical) {
			if n < 10 {
				dir := "fall"
				if lp.FinalOne {
					dir = "rise"
				}
				fmt.Printf("  %s (%s)\n", lp.Path.String(c), dir)
			}
			n++
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if n > 10 {
		fmt.Printf("  ... and %d more\n", n-10)
	}
}
