// Package rdfault identifies robust dependent (RD) path delay faults in
// combinational circuits — a from-scratch reproduction of U. Sparmann,
// D. Luxenburger, K.-T. Cheng and S.M. Reddy, "Fast Identification of
// Robust Dependent Path Delay Faults", 32nd Design Automation Conference,
// 1995.
//
// RD paths never need to be tested: if every path outside an RD-set
// passes a robust delay test, the circuit meets its clock period
// (Theorem 1). This package exposes the paper's fast identification
// pipeline — implicit path enumeration with local implications over
// input-sort-induced stabilizing assignments — together with every
// substrate it rests on: the netlist model, stabilizing systems, path
// counting, the unfolding-based comparator of Lam et al. (DAC 1993), a
// path delay fault test generator and classifier, logic/timing
// simulation, PLA synthesis, and deterministic benchmark generators.
//
// # Quick start
//
//	c, err := rdfault.ParseBench("mine", file)
//	...
//	report, err := rdfault.Identify(c, rdfault.Heuristic2, rdfault.Options{})
//	fmt.Printf("%v of %v logical paths are robust dependent (%.2f%%)\n",
//	    report.RD, report.TotalLogicalPaths, report.RDPercent())
//
// The identified RD-set is sound by construction: the enumeration only
// ever over-approximates the set of paths that must be kept, so every
// path it reports as RD genuinely needs no test.
package rdfault

import (
	"io"
	"math/big"

	"rdfault/internal/analysis"
	"rdfault/internal/bdd"
	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/dft"
	"rdfault/internal/fsim"
	"rdfault/internal/gen"
	"rdfault/internal/leafdag"
	"rdfault/internal/paths"
	"rdfault/internal/pathsel"
	"rdfault/internal/pla"
	"rdfault/internal/sim"
	"rdfault/internal/stabilize"
	"rdfault/internal/synth"
	"rdfault/internal/tgen"
	"rdfault/internal/timing"
	"rdfault/internal/verilog"
)

// Circuit is an immutable combinational netlist; see Builder and
// ParseBench for construction.
type Circuit = circuit.Circuit

// Builder incrementally constructs a Circuit.
type Builder = circuit.Builder

// GateID identifies a gate within a Circuit.
type GateID = circuit.GateID

// GateType enumerates gate kinds.
type GateType = circuit.GateType

// Gate types.
const (
	Input  = circuit.Input
	Output = circuit.Output
	Buf    = circuit.Buf
	Not    = circuit.Not
	And    = circuit.And
	Or     = circuit.Or
	Nand   = circuit.Nand
	Nor    = circuit.Nor
)

// Lead identifies a wire by the gate input pin it feeds.
type Lead = circuit.Lead

// InputSort is a total order of every gate's input pins (Definition 7);
// it induces the complete stabilizing assignment σ^π.
type InputSort = circuit.InputSort

// Path is a physical PI-to-PO path; Logical pairs it with a transition.
type (
	Path    = paths.Path
	Logical = paths.Logical
)

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder { return circuit.NewBuilder(name) }

// ParseBench reads an ISCAS-style ".bench" netlist (XOR/XNOR expanded to
// simple gates).
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	return circuit.ParseBench(name, r)
}

// WriteBench writes a circuit in ".bench" format.
func WriteBench(w io.Writer, c *Circuit) error { return circuit.WriteBench(w, c) }

// ParseVerilog reads a gate-level structural Verilog module (primitives
// and/or/nand/nor/not/buf).
func ParseVerilog(name string, r io.Reader) (*Circuit, error) {
	return verilog.Parse(name, r)
}

// WriteVerilog writes a circuit as a structural Verilog module.
func WriteVerilog(w io.Writer, c *Circuit) error { return verilog.Write(w, c) }

// CountPaths returns the exact number of logical paths in c (twice the
// physical count; arbitrary precision — c6288-style circuits exceed
// int64). The count is computed once per circuit and served from the
// analysis manager thereafter; the returned big.Int is caller-owned.
func CountPaths(c *Circuit) *big.Int { return analysis.For(c).CopyLogical() }

// Criterion selects the sensitization conditions Enumerate checks; see
// the core package constants re-exported here.
type Criterion = core.Criterion

// Sensitization criteria.
const (
	// FS checks functional sensitizability (Definition 4).
	FS = core.FS
	// SigmaPi checks membership in LP(σ^π) (Lemma 2); requires a sort.
	SigmaPi = core.SigmaPi
	// NonRobust checks non-robust testability (Definition 5).
	NonRobust = core.NonRobust
)

// Options tunes Enumerate and Identify, including the resilience knobs:
// Context/Deadline interrupt a run gracefully and Checkpoint resumes one.
type Options = core.Options

// Result reports one enumeration pass; Result.Status says how it ended.
type Result = core.Result

// Status classifies how an enumeration run ended.
type Status = core.Status

// Enumeration statuses. Only StatusComplete proves an RD count; an
// interrupted run (StatusDeadline, StatusCanceled) hands back a
// resumable Checkpoint instead, and StatusDegraded marks counters
// tainted by a worker panic.
const (
	StatusComplete  = core.StatusComplete
	StatusTruncated = core.StatusTruncated
	StatusDeadline  = core.StatusDeadline
	StatusCanceled  = core.StatusCanceled
	StatusDegraded  = core.StatusDegraded
)

// Sentinel errors of the enumeration stack; match with errors.Is.
var (
	ErrDeadline    = core.ErrDeadline
	ErrCanceled    = core.ErrCanceled
	ErrWorkerPanic = core.ErrWorkerPanic
)

// WorkerError is the crash report of one panicked enumeration worker.
type WorkerError = core.WorkerError

// Checkpoint is the serialized frontier of an interrupted enumeration.
// Resuming from it (Options.Checkpoint) reproduces the uninterrupted
// run's counters exactly.
type Checkpoint = core.Checkpoint

// ErrCorruptCheckpoint is the sentinel for a checkpoint file whose bytes
// cannot be trusted (truncation, garbage, flipped bytes, trailing junk);
// match with errors.Is. A corrupt file is never decoded into a zero-value
// resumable state.
var ErrCorruptCheckpoint = core.ErrCorruptCheckpoint

// CorruptCheckpointError reports where (path, byte offset) and why a
// checkpoint failed to decode; it unwraps to ErrCorruptCheckpoint.
type CorruptCheckpointError = core.CorruptCheckpointError

// ReadCheckpointFile loads a checkpoint written by WriteCheckpointFile.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	return core.ReadCheckpointFile(path)
}

// WriteCheckpointFile atomically writes cp to path.
func WriteCheckpointFile(path string, cp *Checkpoint) error {
	return core.WriteCheckpointFile(path, cp)
}

// Enumerate runs Algorithm 2: implicit enumeration of all logical paths
// with prime-segment pruning under the given criterion.
func Enumerate(c *Circuit, cr Criterion, opt Options) (*Result, error) {
	return core.Enumerate(c, cr, opt)
}

// Heuristic selects the input sort used by Identify.
type Heuristic = core.Heuristic

// Identification heuristics (Table I columns).
const (
	HeuristicFUS      = core.HeuristicFUS
	Heuristic1        = core.Heuristic1
	Heuristic2        = core.Heuristic2
	Heuristic2Inverse = core.Heuristic2Inverse
	HeuristicPinOrder = core.HeuristicPinOrder
)

// Report is the outcome of a full RD identification run.
type Report = core.Report

// Identify runs the paper's full pipeline: choose an input sort with the
// given heuristic, then enumerate LP^sup(σ^π); everything outside is
// robust dependent.
func Identify(c *Circuit, h Heuristic, opt Options) (*Report, error) {
	return core.Identify(c, h, opt)
}

// Heuristic1Sort orders gate inputs by path counts (Section V).
func Heuristic1Sort(c *Circuit) InputSort { return core.Heuristic1Sort(c) }

// Heuristic2Sort orders gate inputs by |FS_c^sup \ T_c^sup| (Algorithm 3).
// The two returned Results are the measurement passes.
func Heuristic2Sort(c *Circuit) (InputSort, *Result, *Result, error) {
	return core.Heuristic2Sort(c)
}

// Heuristic2SortWorkers is Heuristic2Sort with a worker budget: the two
// Algorithm 3 passes run concurrently and internally parallel. The sort
// is identical for every worker count.
func Heuristic2SortWorkers(c *Circuit, workers int) (InputSort, *Result, *Result, error) {
	return core.Heuristic2SortWorkers(c, workers)
}

// PinOrderSort returns the identity input sort.
func PinOrderSort(c *Circuit) InputSort { return circuit.PinOrderSort(c) }

// SCOAPSort orders gate inputs by SCOAP testability measures — the
// library's extension heuristic alongside the paper's two. Measures and
// sort are computed once per circuit (analysis manager); the returned
// sort is shared, treat it as read-only.
func SCOAPSort(c *Circuit) InputSort { return analysis.For(c).SCOAPSort() }

// RDCertificate is the compact prime-segment certificate of an RD-set.
type RDCertificate = core.Certificate

// CollectRDSegments runs the SigmaPi enumeration and returns the compact
// RD certificate: pruned prime segments whose extensions are exactly the
// identified RD paths.
func CollectRDSegments(c *Circuit, sort InputSort, opt Options) (*RDCertificate, error) {
	return core.CollectRDSegments(c, sort, opt)
}

// UnfoldingOptions tunes IdentifyByUnfolding.
type UnfoldingOptions = leafdag.Options

// UnfoldingReport is the result of IdentifyByUnfolding.
type UnfoldingReport = leafdag.Report

// IdentifyByUnfolding runs the leaf-dag approach of Lam et al. [1]: exact
// stuck-at redundancy identification on the fanout-free unfolding. Much
// slower than Identify but of slightly higher quality — the Table III
// comparator.
func IdentifyByUnfolding(c *Circuit, opt UnfoldingOptions) (*UnfoldingReport, error) {
	return leafdag.IdentifyRD(c, opt)
}

// StabilizingSystem runs Algorithm 1 for input vector v (Inputs() order);
// a nil chooser picks the first controlling input.
func StabilizingSystem(c *Circuit, v []bool, choose stabilize.Chooser) *stabilize.System {
	return stabilize.Compute(c, v, choose)
}

// ChooseBySort returns the Algorithm 1 chooser realizing σ^π.
func ChooseBySort(s InputSort) stabilize.Chooser { return stabilize.ChooseBySort(s) }

// Generator produces and classifies two-pattern path delay fault tests.
type Generator = tgen.Generator

// Test is a two-pattern test.
type Test = tgen.Test

// Class is a path's strongest test class.
type Class = tgen.Class

// Test classes, strongest last.
const (
	Unsensitizable   = tgen.Unsensitizable
	FuncSensitizable = tgen.FuncSensitizable
	NonRobustClass   = tgen.NonRobust
	Robust           = tgen.Robust
)

// NewGenerator returns a test generator for c.
func NewGenerator(c *Circuit) *Generator { return tgen.NewGenerator(c) }

// Delays assigns per-gate propagation delays (a simulated manufactured
// implementation).
type Delays = sim.Delays

// UnitDelays gives every internal gate delay 1.
func UnitDelays(c *Circuit) Delays { return sim.UnitDelays(c) }

// RandomDelays draws gate delays uniformly from [min, max).
func RandomDelays(c *Circuit, seed int64, min, max float64) Delays {
	return sim.RandomDelays(c, seed, min, max)
}

// Simulate runs the event-driven two-pattern timing simulation.
func Simulate(c *Circuit, d Delays, v1, v2 []bool) *sim.TimingResult {
	return sim.Simulate(c, d, v1, v2)
}

// PLACover is a two-level cover in Espresso semantics.
type PLACover = pla.Cover

// ParsePLA reads an Espresso ".pla" file.
func ParsePLA(name string, r io.Reader) (*PLACover, error) { return pla.Parse(name, r) }

// SynthOptions tunes Synthesize.
type SynthOptions = synth.Options

// Synthesize compiles a two-level cover into a multi-level circuit
// (divisor extraction + tree decomposition) — the stand-in for SIS
// script.rugged.
func Synthesize(cv *PLACover, opt SynthOptions) (*Circuit, error) {
	return synth.Synthesize(cv, opt)
}

// PaperExample returns the reconstruction of the paper's running example
// circuit (Figures 1-5).
func PaperExample() *Circuit { return gen.PaperExample() }

// Equivalent reports whether two circuits compute the same functions
// (exact, via BDDs; inputs matched positionally).
func Equivalent(a, b *Circuit) (bool, error) { return bdd.Equivalent(a, b) }

// RemoveRedundant folds functionally redundant gates to constants (BDD-
// verified) and returns the swept, equivalent circuit plus the number of
// gates removed. Redundancy is the dominant source of RD paths, making
// this the natural pre-synthesis ablation.
func RemoveRedundant(c *Circuit, maxInputs int) (*Circuit, int, error) {
	return synth.RemoveRedundant(c, maxInputs)
}

// TimingAnalysis is a static timing analysis (arrival/departure times,
// critical delay, longest-path extraction).
type TimingAnalysis = timing.Analysis

// AnalyzeTiming computes static timing for c under d, cached per
// (circuit, delay vector) by the analysis manager; repeated analyses of
// the same corner are free. The returned analysis is shared — read-only.
func AnalyzeTiming(c *Circuit, d Delays) *TimingAnalysis { return analysis.For(c).Timing(d) }

// Selector runs the Section VI path selection strategies (threshold and
// per-lead) restricted to non-RD paths.
type Selector = pathsel.Selector

// SelectOptions configures NewSelector and its strategies.
type SelectOptions = pathsel.Options

// NewSelector prepares RD identification and timing analysis for path
// selection.
func NewSelector(c *Circuit, d Delays, opt SelectOptions) (*Selector, error) {
	return pathsel.NewSelector(c, d, opt)
}

// FaultSimulator determines which logical paths a two-pattern test
// detects robustly and non-robustly.
type FaultSimulator = fsim.Simulator

// NewFaultSimulator returns a fault simulator for c.
func NewFaultSimulator(c *Circuit) *FaultSimulator { return fsim.New(c) }

// CompactOptions tunes CompactTests.
type CompactOptions = fsim.CompactOptions

// TestCoverage summarizes a CompactTests run.
type TestCoverage = fsim.Coverage

// CompactTests builds a compact test set for the target paths via
// generate-and-drop fault simulation (robust first, optionally falling
// back to non-robust tests).
func CompactTests(c *Circuit, targets []Logical, gn *Generator, opt CompactOptions) ([]Test, TestCoverage) {
	return fsim.CompactTests(c, targets, gn, opt)
}

// DFTProposal is a control-point suggestion for an untestable kept path.
type DFTProposal = dft.Proposal

// ProposeControlPoints analyses untestable paths and suggests control
// points at their blocking side inputs.
func ProposeControlPoints(c *Circuit, untestable []Logical) []DFTProposal {
	return dft.Propose(c, untestable)
}

// ProposeObservePoints suggests observation taps: the deepest on-path
// gate up to which each untestable path is still sensitizable.
func ProposeObservePoints(c *Circuit, untestable []Logical) []GateID {
	return dft.ProposeObservePoints(c, untestable)
}

// InsertObservePoints taps the listed gates with fresh primary outputs,
// leaving the original function untouched.
func InsertObservePoints(c *Circuit, gates []GateID) (*Circuit, error) {
	return dft.InsertObservePoints(c, gates)
}

// ReduceTests statically compacts a test set by reverse-order
// elimination, preserving the targets' detection coverage.
func ReduceTests(c *Circuit, tests []Test, targets []Logical, allowNonRobust bool) []Test {
	return fsim.ReduceTests(c, tests, targets, allowNonRobust)
}

// InsertControlPoints applies the proposals, returning a circuit with
// extra test-mode inputs that preserves the original function when they
// are 0.
func InsertControlPoints(c *Circuit, props []DFTProposal) (*Circuit, error) {
	return dft.Insert(c, props)
}

// ForEachLogicalPath enumerates every logical path of c; the Path buffer
// is shared, Clone to retain. Enumeration stops when fn returns false.
func ForEachLogicalPath(c *Circuit, fn func(Logical) bool) bool {
	return paths.ForEachLogical(c, fn)
}
