package rdfault_test

import (
	"fmt"
	"strings"

	"rdfault"
)

// The paper's running example: 3 of its 8 logical paths are robust
// dependent, so only 5 need delay tests.
func ExampleIdentify() {
	c := rdfault.PaperExample()
	rep, err := rdfault.Identify(c, rdfault.Heuristic2, rdfault.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("RD paths: %v of %v (%.1f%%)\n", rep.RD, rep.TotalLogicalPaths, rep.RDPercent())
	// Output:
	// RD paths: 3 of 8 (37.5%)
}

func ExampleCountPaths() {
	c := rdfault.PaperExample()
	fmt.Println(rdfault.CountPaths(c))
	// Output:
	// 8
}

func ExampleParseBench() {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
`
	c, err := rdfault.ParseBench("tiny", strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Stats())
	// Output:
	// gates=4 inputs=2 outputs=1 leads=3 depth=2 INPUT=2 OUTPUT=1 NAND=1
}

func ExampleStabilizingSystem() {
	c := rdfault.PaperExample()
	// For input 111 the first-controlling-input choice stabilizes the
	// output through the single lead from a.
	s := rdfault.StabilizingSystem(c, []bool{true, true, true}, nil)
	fmt.Println(s)
	// Output:
	// a->y, y->y$po
}

func ExampleEnumerate() {
	c := rdfault.PaperExample()
	sort := rdfault.PinOrderSort(c)
	res, err := rdfault.Enumerate(c, rdfault.SigmaPi, rdfault.Options{Sort: &sort})
	if err != nil {
		panic(err)
	}
	fmt.Printf("kept %d, robust dependent %v\n", res.Selected, res.RD)
	// Output:
	// kept 5, robust dependent 3
}

func ExampleNewGenerator() {
	c := rdfault.PaperExample()
	gn := rdfault.NewGenerator(c)
	// Classify every logical path, counting per class.
	counts := map[rdfault.Class]int{}
	rdfault.ForEachLogicalPath(c, func(lp rdfault.Logical) bool {
		counts[gn.Classify(rdfault.Logical{Path: lp.Path.Clone(), FinalOne: lp.FinalOne})]++
		return true
	})
	fmt.Printf("robust=%d non-robust=%d func-sens=%d\n",
		counts[rdfault.Robust], counts[rdfault.NonRobustClass], counts[rdfault.FuncSensitizable])
	// Output:
	// robust=4 non-robust=1 func-sens=3
}

func ExampleSimulate() {
	c := rdfault.PaperExample()
	d := rdfault.UnitDelays(c)
	// Input b rises; the output settles through the longest path.
	res := rdfault.Simulate(c, d, []bool{false, false, false}, []bool{false, true, false})
	fmt.Printf("settles at t=%v\n", res.StabilizeTime(c))
	// Output:
	// settles at t=3
}
