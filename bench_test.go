// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VI). Run all of them with
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the measured rows next to the paper's published
// values on its first iteration; EXPERIMENTS.md archives one full run.
package rdfault

import (
	"fmt"
	"io"
	"math/big"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"rdfault/internal/analysis"
	"rdfault/internal/benchjson"
	"rdfault/internal/exp"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
	"rdfault/internal/store"
)

// BenchmarkTableI regenerates Table I: the percentage of logical paths
// identified robust dependent by the FUS baseline, Heuristic 1,
// Heuristic 2 and the inverse-sort control, on the ISCAS85-analogue
// suite.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.RunISCAS(gen.ISCAS85Suite(), exp.SuiteOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println()
			exp.FprintTableI(os.Stdout, rows)
			avg := 0.0
			for _, r := range rows {
				avg += r.Heu2 - r.Heu1
			}
			avg /= float64(len(rows))
			fmt.Printf("average Heu2-Heu1 improvement: %.2f%% (paper: 2.51%%)\n", avg)
			b.ReportMetric(avg, "Heu2-Heu1-%")
		}
	}
}

// BenchmarkTableII regenerates Table II: total logical path counts and
// the running times of Heuristic 1 vs Heuristic 2 (the paper's factor-3
// relation: Heu2 executes the enumeration three times).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.RunISCAS(gen.ISCAS85Suite(), exp.SuiteOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println()
			exp.FprintTableII(os.Stdout, rows)
			ratio := 0.0
			for _, r := range rows {
				ratio += float64(r.TimeHeu2) / float64(r.TimeHeu1)
			}
			ratio /= float64(len(rows))
			fmt.Printf("average Heu2/Heu1 time ratio: %.1fx (paper: ~3x or more)\n", ratio)
			b.ReportMetric(ratio, "Heu2/Heu1-time")
		}
	}
}

// BenchmarkTableIII regenerates Table III: the leaf-dag unfolding
// approach of Lam et al. [1] against Heuristic 2 on synthesized
// MCNC-analogue two-level benchmarks — quality and running time.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.RunMCNC(gen.MCNCSuite(), exp.SuiteOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println()
			exp.FprintTableIII(os.Stdout, rows)
			gap := exp.QualityGap(rows)
			fmt.Printf("average RD shortfall of Heuristic 2 vs [1]: %.2f%% (paper: 2.05%%)\n", gap)
			b.ReportMetric(gap, "quality-gap-%")
		}
	}
}

// BenchmarkFigures regenerates Figures 1-5 and Examples 1-4 on the
// reconstructed running example circuit.
func BenchmarkFigures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := io.Discard
		if i == 0 {
			fmt.Println()
			w = os.Stdout
		}
		if _, err := exp.RunFigures(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpeedup regenerates the Section VI running-time anchor: the
// unfolding approach against Heuristic 2 on a growing SEC-decoder family
// (the c499-like structure for which [1] ran >69 hours while Heuristic 2
// needed under 4 minutes). The largest size blows the unfolding's node
// cap — the "did not finish" regime.
func BenchmarkSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := io.Discard
		if i == 0 {
			fmt.Println()
			w = os.Stdout
		}
		rows, err := exp.RunSpeedup(w, []int{4, 6, 8, 10, 12, 14, 20}, 400_000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := rows[len(rows)-2] // largest completed size
			b.ReportMetric(last.Speedup(), "speedup-x")
		}
	}
}

// BenchmarkAblations measures the design choices DESIGN.md calls out:
// prime-segment pruning, the local-implication approximation gap, and
// the value of input sorting.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := io.Discard
		if i == 0 {
			fmt.Println()
			w = os.Stdout
		}
		if _, err := exp.RunAblations(w, []int64{1, 2, 3, 4, 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalityGap measures the two quality losses of the fast
// algorithm on tiny circuits where the unrestricted optimum is computable
// exhaustively: the sort-induced search-space restriction and the
// local-implication approximation.
func BenchmarkOptimalityGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := io.Discard
		if i == 0 {
			fmt.Println()
			w = os.Stdout
		}
		if _, err := exp.RunOptimalityGap(w, []int64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRedundancySweep runs the redundancy-sweep ablation: how much
// of the identified RD-set is explained by functional redundancy that an
// idealized synthesis step would remove.
func BenchmarkRedundancySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := io.Discard
		if i == 0 {
			fmt.Println()
			w = os.Stdout
		}
		if _, err := exp.RunRedundancySweep(w, []int64{1, 2, 3, 4, 5, 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSortComparison runs the extension experiment: the SCOAP
// testability-driven input sort against pin order and the paper's two
// heuristics, on the smaller half of the ISCAS85-analogue suite.
func BenchmarkSortComparison(b *testing.B) {
	var small []gen.Named
	for _, nc := range gen.ISCAS85Suite() {
		switch nc.Paper {
		case "c432", "c880", "c499", "c5315":
			small = append(small, nc)
		}
	}
	for i := 0; i < b.N; i++ {
		w := io.Discard
		if i == 0 {
			fmt.Println()
			w = os.Stdout
		}
		if _, err := exp.RunSortComparison(w, small); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerateWorkers measures work-stealing enumeration throughput
// on the suite's largest circuit (the c3540 analogue, 84M logical paths)
// at 1/2/4/8 workers, reporting paths/sec, and writes the rows to
// BENCH_enumerate.json. The Selected and RD counts are asserted identical
// across worker counts — the scheduling-independence guarantee.
func BenchmarkEnumerateWorkers(b *testing.B) {
	c := gen.BCDALU(4, gen.XorNAND) // c3540 analogue
	total, _ := new(big.Float).SetInt(CountPaths(c)).Float64()
	var rows []benchjson.EnumerateRow
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var res *Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = Enumerate(c, FS, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			nsPerOp := b.Elapsed().Nanoseconds() / int64(b.N)
			pps := total / (float64(nsPerOp) / 1e9)
			b.ReportMetric(pps, "paths/sec")
			rows = append(rows, benchjson.EnumerateRow{
				Workers:     workers,
				NsPerOp:     nsPerOp,
				PathsPerSec: pps,
				Selected:    res.Selected,
				RD:          res.RD.String(),
				GOMAXPROCS:  runtime.GOMAXPROCS(0),
				NumCPU:      runtime.NumCPU(),
			})
		})
	}
	if len(rows) == 0 {
		return
	}
	for i := range rows {
		rows[i].Speedup = float64(rows[0].NsPerOp) / float64(rows[i].NsPerOp)
		if rows[i].Selected != rows[0].Selected || rows[i].RD != rows[0].RD {
			b.Fatalf("workers=%d: Selected/RD (%d, %s) differ from serial (%d, %s)",
				rows[i].Workers, rows[i].Selected, rows[i].RD, rows[0].Selected, rows[0].RD)
		}
	}
	if err := benchjson.WriteFile("BENCH_enumerate.json", benchjson.KindEnumerate, rows); err != nil {
		b.Fatal(err)
	}
	fmt.Println("wrote BENCH_enumerate.json")
}

// BenchmarkIdentifyCached measures what the analysis manager buys: the
// full identification pipeline (FUS, then Heuristic 1, then Heuristic 2
// on the same circuit) with the shared analysis cache against the
// recompute-everywhere baseline, on the smaller half of the
// ISCAS85-analogue suite. Per-op wall clock and allocations are written
// to BENCH_identify.json; the Selected/RD/Segments counters are asserted
// byte-identical between the two modes (at 1 and 4 workers) — caching
// must change cost, never results.
func BenchmarkIdentifyCached(b *testing.B) {
	var suite []gen.Named
	for _, nc := range gen.ISCAS85Suite() {
		switch nc.Paper {
		case "c432", "c880", "c499", "c5315":
			suite = append(suite, nc)
		}
	}
	heuristics := []Heuristic{HeuristicFUS, Heuristic1, Heuristic2}

	pipeline := func(c *Circuit, workers int) benchjson.IdentifyCounters {
		var ct benchjson.IdentifyCounters
		for i, h := range heuristics {
			rep, err := Identify(c, h, Options{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			ct.Selected[i] = rep.Selected
			ct.RD[i] = rep.RD.String()
			ct.Segments[i] = rep.Final.Segments
		}
		return ct
	}
	// measure runs the pipeline n times and reports per-op nanoseconds,
	// allocation count and allocated bytes (monotonic counters; no forced
	// GC needed).
	measure := func(c *Circuit, n int) (nsOp int64, allocsOp, bytesOp uint64) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		for i := 0; i < n; i++ {
			pipeline(c, 1)
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&after)
		un := uint64(n)
		return elapsed.Nanoseconds() / int64(n),
			(after.Mallocs - before.Mallocs) / un,
			(after.TotalAlloc - before.TotalAlloc) / un
	}

	var rows []benchjson.IdentifyRow
	for _, nc := range suite {
		nc := nc
		b.Run(nc.Paper, func(b *testing.B) {
			analysis.Reset()

			// Baseline: every call site re-derives its analyses.
			prev := analysis.SetEnabled(false)
			base := pipeline(nc.C, 1)
			base4 := pipeline(nc.C, 4)
			unNs, unAllocs, unBytes := measure(nc.C, b.N)
			analysis.SetEnabled(prev)

			// Cached: one cold op populates the registry (counts, sorts,
			// Algorithm 3 passes), then b.N warm ops are served from it.
			analysis.Reset()
			t0 := time.Now()
			warm := pipeline(nc.C, 1)
			coldNs := time.Since(t0).Nanoseconds()
			warm4 := pipeline(nc.C, 4)
			caNs, caAllocs, caBytes := measure(nc.C, b.N)

			if warm != base || warm4 != base4 || warm != warm4 {
				b.Fatalf("%s: cached counters diverge from baseline:\ncached   %+v\nuncached %+v",
					nc.Paper, warm, base)
			}

			// Headline throughput: logical paths covered per second of warm
			// pipeline time. Hot-loop allocations: one warm single-worker
			// enumeration pass (Heuristic 2, the deepest one) on the shared
			// analyses — the flat engine's assign/backtrack path is
			// allocation-free, so this counts only per-run envelope work.
			total, _ := new(big.Float).SetInt(CountPaths(nc.C)).Float64()
			pps := total / (float64(caNs) / 1e9)
			var hb, ha runtime.MemStats
			runtime.ReadMemStats(&hb)
			if _, err := Identify(nc.C, Heuristic2, Options{Workers: 1}); err != nil {
				b.Fatal(err)
			}
			runtime.ReadMemStats(&ha)

			b.ReportMetric(float64(unNs)/float64(caNs), "speedup")
			b.ReportMetric(pps, "paths/sec")
			rows = append(rows, benchjson.IdentifyRow{
				Circuit:        nc.Paper,
				UncachedNsOp:   unNs,
				CachedNsOp:     caNs,
				CachedColdNs:   coldNs,
				Speedup:        float64(unNs) / float64(caNs),
				PathsPerSec:    pps,
				HotLoopAllocs:  ha.Mallocs - hb.Mallocs,
				UncachedAllocs: unAllocs,
				CachedAllocs:   caAllocs,
				UncachedBytes:  unBytes,
				CachedBytes:    caBytes,
				Counters:       warm,
			})
			analysis.Reset()
		})
	}
	// The store-hit row: the same three-heuristic pipeline served through
	// the content-addressed result store. Uncached is the cold populating
	// run, cached is the warm pure-hit path (stored counters, zero
	// enumeration) — the ECO-workload headline number. Selected/RD are
	// asserted against the direct pipeline; Segments is the store's
	// cone-sharded work sum, identical between cold and warm by the ECO
	// equivalence suite.
	b.Run("c880-store-hit", func(b *testing.B) {
		var c880 *Circuit
		for _, nc := range gen.ISCAS85Suite() {
			if nc.Paper == "c880" {
				c880 = nc.C
			}
		}
		st, err := store.Open(filepath.Join(b.TempDir(), "rdstore"))
		if err != nil {
			b.Fatal(err)
		}
		storePipeline := func(wantHit bool) benchjson.IdentifyCounters {
			var ct benchjson.IdentifyCounters
			for i, h := range heuristics {
				res, err := store.IdentifyThrough(st, c880, store.Options{Heuristic: h, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				if wantHit && (res.Outcome != "hit" || res.EnumeratedSegments != 0) {
					b.Fatalf("warm run not a pure hit: outcome=%q segments=%d",
						res.Outcome, res.EnumeratedSegments)
				}
				ct.Selected[i] = res.Selected
				ct.RD[i] = res.RDStr
				ct.Segments[i] = res.Segments
			}
			return ct
		}
		analysis.Reset()
		var coldBefore, coldAfter runtime.MemStats
		runtime.ReadMemStats(&coldBefore)
		t0 := time.Now()
		cold := storePipeline(false)
		coldNs := time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&coldAfter)
		for i, h := range heuristics {
			rep, err := Identify(c880, h, Options{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Selected != cold.Selected[i] || rep.RD.String() != cold.RD[i] {
				b.Fatalf("store pipeline diverges from direct pipeline for %v", h)
			}
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 = time.Now()
		for i := 0; i < b.N; i++ {
			warm := storePipeline(true)
			if warm != cold {
				b.Fatalf("store hit served different counters:\ncold %+v\nwarm %+v", cold, warm)
			}
		}
		warmNs := time.Since(t0).Nanoseconds() / int64(b.N)
		runtime.ReadMemStats(&after)
		warmAllocs := (after.Mallocs - before.Mallocs) / uint64(b.N)
		warmBytes := (after.TotalAlloc - before.TotalAlloc) / uint64(b.N)

		// The warm hit is a couple of hundred microseconds of file reads,
		// so the raw cold/warm ratio is jitter-dominated (it swings 2-3x
		// between otherwise identical runs). The regression gate's job for
		// this row is qualitative — a hit that starts re-enumerating drops
		// the ratio to ~1x — so the gated speedup is clamped to a floor the
		// noise can never reach from below. PathsPerSec is reported as zero
		// because a pure hit walks zero paths; benchcompare skips absent
		// throughput rather than gating noise.
		speedup := float64(coldNs) / float64(warmNs)
		b.ReportMetric(speedup, "speedup")
		const speedupFloor = 50
		if speedup > speedupFloor {
			speedup = speedupFloor
		}
		rows = append(rows, benchjson.IdentifyRow{
			Circuit:        "c880-store-hit",
			UncachedNsOp:   coldNs,
			CachedNsOp:     warmNs,
			CachedColdNs:   coldNs,
			Speedup:        speedup,
			HotLoopAllocs:  warmAllocs,
			UncachedAllocs: coldAfter.Mallocs - coldBefore.Mallocs,
			CachedAllocs:   warmAllocs,
			UncachedBytes:  coldAfter.TotalAlloc - coldBefore.TotalAlloc,
			CachedBytes:    warmBytes,
			Counters:       cold,
		})
		analysis.Reset()
	})
	if len(rows) == 0 {
		return
	}
	for _, r := range rows {
		if r.CachedNsOp >= r.UncachedNsOp {
			b.Errorf("%s: cached pipeline not faster (%d ns vs %d ns)",
				r.Circuit, r.CachedNsOp, r.UncachedNsOp)
		}
		if r.CachedAllocs >= r.UncachedAllocs {
			b.Errorf("%s: cached pipeline not lower-allocating (%d vs %d allocs)",
				r.Circuit, r.CachedAllocs, r.UncachedAllocs)
		}
	}
	if err := benchjson.WriteFile("BENCH_identify.json", benchjson.KindIdentify, rows); err != nil {
		b.Fatal(err)
	}
	fmt.Println("wrote BENCH_identify.json")
	for _, r := range rows {
		fmt.Printf("%-8s uncached %8.2fms  cached %8.2fms  speedup %.2fx  allocs %d -> %d\n",
			r.Circuit, float64(r.UncachedNsOp)/1e6, float64(r.CachedNsOp)/1e6,
			r.Speedup, r.UncachedAllocs, r.CachedAllocs)
	}
}

// BenchmarkPathCountC6288 reproduces the path-count remark that excludes
// c6288 from Table I: exact counting on the 16x16 array multiplier
// (>10^17 logical paths here; >1.9*10^20 in the original) is linear-time
// even though enumeration is hopeless.
func BenchmarkPathCountC6288(b *testing.B) {
	c := gen.C6288Analogue()
	var total *big.Int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = paths.NewCounts(c).Logical()
	}
	b.StopTimer()
	threshold := new(big.Int).Exp(big.NewInt(10), big.NewInt(17), nil)
	if total.Cmp(threshold) < 0 {
		b.Fatalf("multiplier path count %v below 10^17", total)
	}
	fmt.Printf("\nc6288-analogue logical paths: %v (original: >1.9e20)\n", total)
}
